"""Interval Markov Chains (Definition 2.2, once-and-for-all semantics).

An :class:`IMC` replaces the transition function of a DTMC by lower/upper
bound matrices ``A-`` and ``A+``. Under the once-and-for-all semantics used
by the paper, the IMC denotes the *set* of DTMCs whose transition matrix lies
entrywise inside the bounds — a transition value is fixed once, not re-drawn
at every step.

Bound matrices may be dense or scipy-sparse (both the same kind); sparse
IMCs keep the 40 320-state benchmark tractable. For sparse bounds, entries
absent from the *upper* matrix are structurally impossible transitions
(interval ``[0, 0]``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core import linalg
from repro.core.dtmc import DTMC
from repro.core.validation import check_initial_state, normalise_labels
from repro.errors import ConsistencyError, ModelError


class IMC:
    """A finite interval Markov chain ``[A] = (S, s0, A-, A+, G, V)``.

    Parameters
    ----------
    lower, upper:
        Square matrices with ``lower <= upper`` entrywise satisfying the
        consistency conditions of Definition 2.2.
    initial_state, labels, state_names:
        As for :class:`~repro.core.dtmc.DTMC`.
    center:
        Optional distinguished member ``Â`` (the learnt point estimate the
        IMC is centred on). Must belong to the IMC.
    """

    def __init__(
        self,
        lower: object,
        upper: object,
        initial_state: int = 0,
        labels: Mapping[str, object] | None = None,
        state_names: Sequence[str] | None = None,
        center: DTMC | np.ndarray | None = None,
    ):
        lo = linalg.coerce_matrix(lower, "lower bound matrix")
        up = linalg.coerce_matrix(upper, "upper bound matrix")
        if lo.shape != up.shape:
            raise ConsistencyError(f"bound shapes differ: {lo.shape} vs {up.shape}")
        if linalg.is_sparse(lo) != linalg.is_sparse(up):
            raise ConsistencyError("lower and upper bounds must use the same representation")
        self._check_consistency(lo, up)
        linalg.freeze(lo)
        linalg.freeze(up)
        self._lower = lo
        self._upper = up
        n = lo.shape[0]
        self._initial_state = check_initial_state(initial_state, n)
        self._labels = normalise_labels(dict(labels) if labels else None, n)
        if state_names is not None and len(state_names) != n:
            raise ModelError(f"{len(state_names)} state names for {n} states")
        self._state_names = tuple(str(s) for s in state_names) if state_names else None
        self._center: DTMC | None = None
        if center is not None:
            chain = (
                center
                if isinstance(center, DTMC)
                else DTMC(center, self._initial_state, labels, state_names)
            )
            if not self.contains(chain):
                raise ConsistencyError("the declared center matrix lies outside the IMC")
            self._center = chain

    @staticmethod
    def _check_consistency(lower: object, upper: object) -> None:
        """The three conditions of Definition 2.2."""
        linalg.check_entries_in_unit_interval(lower, "lower bound matrix")
        linalg.check_entries_in_unit_interval(upper, "upper bound matrix")
        diff = lower - upper
        max_gap = linalg.max_entries(diff) if not linalg.is_sparse(diff) else (
            float(diff.data.max()) if diff.nnz else 0.0
        )
        if max_gap > 1e-12:
            raise ConsistencyError("A- exceeds A+ on some transition")
        lower_sums = linalg.row_sums(lower)
        bad = np.flatnonzero(lower_sums > 1.0 + 1e-9)
        if bad.size:
            state = int(bad[0])
            raise ConsistencyError(
                f"lower bounds from state {state} sum to {lower_sums[state]} > 1"
            )
        upper_sums = linalg.row_sums(upper)
        bad = np.flatnonzero(upper_sums < 1.0 - 1e-9)
        if bad.size:
            state = int(bad[0])
            raise ConsistencyError(
                f"upper bounds from state {state} sum to {upper_sums[state]} < 1"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_center(
        cls,
        center: DTMC,
        epsilon: float | np.ndarray,
        widen_zero: bool = False,
    ) -> "IMC":
        """The IMC ``[Â] = [Â − ε, Â + ε]`` centred on a learnt DTMC.

        This is the construction of Section II-B: ``Â- = Â − ε`` and
        ``Â+ = Â + ε`` clipped to ``[0, 1]``. By default, transitions that
        are structurally absent (``Â_ij = 0``) stay absent — the paper
        assumes the graph structure is known ("the graph structure being
        identical"). Pass ``widen_zero=True`` (dense chains only) to widen
        zero entries too.

        *epsilon* may be a scalar or a dense matrix of per-transition
        margins (margins for absent transitions are ignored unless
        *widen_zero*).
        """
        eps = np.asarray(epsilon, dtype=float)
        if np.any(eps < 0):
            raise ModelError("epsilon margins must be non-negative")
        if center.is_sparse:
            if widen_zero:
                raise ModelError("widen_zero is not supported for sparse chains")
            matrix = center.transitions
            if eps.ndim == 0:
                eps_data = np.full(matrix.nnz, float(eps))
            elif eps.shape == matrix.shape:
                rows = np.repeat(np.arange(matrix.shape[0]), np.diff(matrix.indptr))
                eps_data = eps[rows, matrix.indices]
            else:
                raise ModelError(f"epsilon shape {eps.shape} does not match {matrix.shape}")
            lower = matrix.copy()
            lower.data = np.clip(matrix.data - eps_data, 0.0, 1.0)
            upper = matrix.copy()
            upper.data = np.clip(matrix.data + eps_data, 0.0, 1.0)
        else:
            a_hat = center.dense()
            if eps.ndim == 0:
                eps = np.full_like(a_hat, float(eps))
            elif eps.shape != a_hat.shape:
                raise ModelError(f"epsilon shape {eps.shape} does not match {a_hat.shape}")
            lower = np.clip(a_hat - eps, 0.0, 1.0)
            upper = np.clip(a_hat + eps, 0.0, 1.0)
            if not widen_zero:
                zero = a_hat == 0.0
                lower[zero] = 0.0
                upper[zero] = 0.0
        return cls(
            lower,
            upper,
            center.initial_state,
            center.labels,
            center.state_names,
            center=center,
        )

    @classmethod
    def from_bounds_dict(
        cls,
        n_states: int,
        bounds: Mapping[tuple[int, int], tuple[float, float]],
        initial_state: int = 0,
        labels: Mapping[str, object] | None = None,
        state_names: Sequence[str] | None = None,
    ) -> "IMC":
        """Build a dense IMC from a sparse ``{(i, j): (lo, hi)}`` mapping."""
        lower = np.zeros((n_states, n_states))
        upper = np.zeros((n_states, n_states))
        for (i, j), (lo, hi) in bounds.items():
            lower[i, j] = lo
            upper[i, j] = hi
        return cls(lower, upper, initial_state, labels, state_names)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def lower(self) -> object:
        """Lower bound matrix ``A-`` (read-only)."""
        return self._lower

    @property
    def upper(self) -> object:
        """Upper bound matrix ``A+`` (read-only)."""
        return self._upper

    @property
    def is_sparse(self) -> bool:
        """True when the bounds are stored sparse."""
        return linalg.is_sparse(self._lower)

    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._lower.shape[0]

    @property
    def initial_state(self) -> int:
        """Index of the initial state."""
        return self._initial_state

    @property
    def labels(self) -> dict[str, np.ndarray]:
        """Mapping of atomic proposition name to a boolean state mask."""
        return {name: mask.copy() for name, mask in self._labels.items()}

    def label_mask(self, name: str) -> np.ndarray:
        """Boolean mask of the states carrying atomic proposition *name*."""
        try:
            return self._labels[name].copy()
        except KeyError:
            raise ModelError(f"unknown label {name!r}; have {sorted(self._labels)}") from None

    @property
    def state_names(self) -> tuple[str, ...] | None:
        """Optional human-readable state names."""
        return self._state_names

    @property
    def center(self) -> DTMC:
        """The distinguished member ``Â`` (defaults to the midpoint chain)."""
        if self._center is not None:
            return self._center
        return self.midpoint()

    def max_width(self) -> float:
        """Largest interval width ``max_ij (A+ − A-)``."""
        diff = self._upper - self._lower
        if linalg.is_sparse(diff):
            return float(diff.data.max()) if diff.nnz else 0.0
        return float(diff.max())

    def is_exact(self, atol: float = 0.0) -> bool:
        """True if every interval is degenerate (the IMC is a single DTMC)."""
        return self.max_width() <= atol

    def row_bounds(self, state: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Support indices and (lower, upper) bound vectors of *state*'s row.

        The support is taken from the *upper* matrix: entries outside it are
        structurally impossible. Returns ``(indices, lower, upper)`` with
        the bound vectors aligned to ``indices``.
        """
        indices, upper_vals = linalg.row_entries(self._upper, state)
        lower_row = linalg.row_dense(self._lower, state) if not self.is_sparse else None
        if lower_row is not None:
            lower_vals = lower_row[indices]
        else:
            lower_dense = np.zeros(self.n_states)
            l_idx, l_vals = linalg.row_entries(self._lower, state)
            lower_dense[l_idx] = l_vals
            lower_vals = lower_dense[indices]
        return indices, lower_vals, upper_vals

    # ------------------------------------------------------------------
    # Membership and extraction
    # ------------------------------------------------------------------
    def contains_matrix(self, matrix: object, atol: float = 1e-9) -> bool:
        """True if the row-stochastic *matrix* satisfies all bound constraints."""
        if matrix.shape != self._lower.shape:
            return False
        sums = linalg.row_sums(matrix)
        if not np.allclose(sums, 1.0, atol=max(atol, 1e-9)):
            return False
        above = matrix - self._upper
        below = self._lower - matrix
        for diff in (above, below):
            if linalg.is_sparse(diff):
                if diff.nnz and float(diff.data.max()) > atol:
                    return False
            elif sparse_like_max(diff) > atol:
                return False
        return True

    def contains(self, chain: DTMC, atol: float = 1e-9) -> bool:
        """True if ``chain ∈ [A]`` (the membership ``B ∈ [A]`` of the paper)."""
        left = chain.transitions
        if linalg.is_sparse(left) != self.is_sparse:
            # Normalise representations for the comparison.
            left = chain.dense() if linalg.is_sparse(left) else left
            lower = self._lower.toarray() if self.is_sparse else self._lower
            upper = self._upper.toarray() if self.is_sparse else self._upper
            sums = np.asarray(left).sum(axis=1)
            return bool(
                np.allclose(sums, 1.0, atol=max(atol, 1e-9))
                and np.all(left >= lower - atol)
                and np.all(left <= upper + atol)
            )
        return self.contains_matrix(left, atol)

    def row_contains(self, state: int, values: np.ndarray, indices: np.ndarray | None = None,
                     atol: float = 1e-9) -> bool:
        """True if a row given over *indices* satisfies state *state*'s bounds.

        With ``indices=None``, *values* is a dense row over all states.
        """
        sup, lo, up = self.row_bounds(state)
        if indices is None:
            dense = np.asarray(values, dtype=float)
            if abs(float(dense.sum()) - 1.0) > max(atol, 1e-9):
                return False
            outside = np.delete(dense, sup) if sup.size < dense.size else np.array([])
            if outside.size and np.any(np.abs(outside) > atol):
                return False
            aligned = dense[sup]
        else:
            order = {int(j): pos for pos, j in enumerate(indices)}
            if set(order) - set(int(j) for j in sup):
                return False
            aligned = np.zeros(sup.size)
            vals = np.asarray(values, dtype=float)
            for pos, j in enumerate(sup):
                if int(j) in order:
                    aligned[pos] = vals[order[int(j)]]
            if abs(float(vals.sum()) - 1.0) > max(atol, 1e-9):
                return False
        return bool(np.all(aligned >= lo - atol) and np.all(aligned <= up + atol))

    def midpoint(self) -> DTMC:
        """A member DTMC obtained by normalising the interval midpoints."""
        return self._assemble_member(lambda lo, up: (lo + up) / 2.0)

    def _assemble_member(self, row_fn) -> DTMC:
        """Build a member chain row by row, projecting onto the constraints."""
        from scipy import sparse as sp

        rows, cols, data = [], [], []
        for state in range(self.n_states):
            indices, lo, up = self.row_bounds(state)
            if indices.size == 0:
                raise ConsistencyError(f"state {state} has no allowed outgoing transition")
            target = row_fn(lo, up)
            projected = project_row_to_simplex(target, lo, up)
            rows.extend([state] * indices.size)
            cols.extend(int(j) for j in indices)
            data.extend(float(v) for v in projected)
        matrix = sp.csr_matrix(
            (data, (rows, cols)), shape=(self.n_states, self.n_states)
        )
        if not self.is_sparse:
            matrix = matrix.toarray()
        return DTMC(matrix, self._initial_state, self._labels, self._state_names)

    def __repr__(self) -> str:
        kind = "sparse" if self.is_sparse else "dense"
        return (
            f"IMC(n_states={self.n_states}, initial_state={self._initial_state}, "
            f"{kind}, max_width={self.max_width():.3g})"
        )


def sparse_like_max(matrix: np.ndarray) -> float:
    """Maximum entry of a dense matrix (named for symmetry with sparse path)."""
    return float(np.max(matrix)) if matrix.size else 0.0


def project_row_to_simplex(
    row: np.ndarray, lower: np.ndarray, upper: np.ndarray, atol: float = 1e-12
) -> np.ndarray:
    """Project *row* onto ``{x : lower <= x <= upper, sum x = 1}``.

    Water-filling projection: clips to the box, then redistributes the
    normalisation residual over the coordinates with slack, proportionally
    to the available slack. Raises :class:`~repro.errors.ConsistencyError`
    when the constraint set is empty.
    """
    lo = np.asarray(lower, dtype=float)
    up = np.asarray(upper, dtype=float)
    if lo.sum() > 1.0 + 1e-9 or up.sum() < 1.0 - 1e-9:
        raise ConsistencyError("row constraint set is empty: no stochastic vector fits")
    x = np.clip(np.asarray(row, dtype=float), lo, up)
    for _ in range(64):
        residual = 1.0 - float(x.sum())
        if abs(residual) <= atol:
            return x
        slack = (up - x) if residual > 0 else (x - lo)
        total_slack = float(slack.sum())
        if total_slack <= 0:
            raise ConsistencyError("projection ran out of slack before normalising")
        x = np.clip(x + residual * slack / total_slack, lo, up)
    residual = 1.0 - float(x.sum())
    idx = int(np.argmax((up - x) if residual > 0 else (x - lo)))
    x[idx] += residual
    if x[idx] < lo[idx] - 1e-9 or x[idx] > up[idx] + 1e-9:
        raise ConsistencyError("projection failed to converge inside the box")
    return np.clip(x, lo, up)
