"""The IMCIS objective ``f(A)`` and its second moment ``g(A)``.

Equation (10) of the paper:

    f(A) = Σ_k z(ω_k) Π_{(i→j) ∈ T_k} (a_ij / b_ij)^{n_ij(ω_k)}

Everything is evaluated in log-space. A candidate is the vector
``log_a[t]`` over the observed transition columns; the per-trace log
likelihood ratios are one sparse mat-vec,

    logL = N @ log_a − log P_B,

and ``f = Σ exp(logL)``, ``g = Σ exp(2·logL)`` via log-sum-exp. Because the
proposal's contribution was recorded per trace as a scalar, the objective is
well-defined for *any* proposal — including time-inhomogeneous ones — and
the candidate ``A`` is the only variable.

Note Algorithm 1 (lines 22–23) writes ``σ̂ = g/N − γ̂²``; that expression is
the *variance* — we return its square root as the standard deviation used
in the confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.errors import EstimationError
from repro.imcis.tables import ObservationTables


@dataclass(frozen=True)
class Moments:
    """First/second-moment summary of the IS sum at a candidate ``A``."""

    log_f: float
    log_g: float
    n_total: int

    @property
    def f(self) -> float:
        """``f(A) = Σ_k z L_k`` (the *unnormalised* objective)."""
        return math.exp(self.log_f) if self.log_f != float("-inf") else 0.0

    @property
    def gamma(self) -> float:
        """``γ̂_N(A) = f(A)/N`` (Algorithm 1, lines 20–21)."""
        if self.log_f == float("-inf"):
            return 0.0
        return math.exp(self.log_f - math.log(self.n_total))

    @property
    def sigma(self) -> float:
        """``σ̂_N(A) = sqrt(g(A)/N − γ̂²)`` (Algorithm 1, lines 22–23)."""
        if self.log_g == float("-inf"):
            return 0.0
        second = math.exp(self.log_g - math.log(self.n_total))
        variance = second - self.gamma**2
        return math.sqrt(max(0.0, variance))


class ISObjective:
    """Vectorised evaluator of ``f``/``g`` over observed-transition columns."""

    def __init__(self, tables: ObservationTables):
        self._tables = tables
        self._counts = tables.counts
        self._log_b = tables.log_proposal

    @property
    def tables(self) -> ObservationTables:
        """The observation tables the objective is built on."""
        return self._tables

    @property
    def n_columns(self) -> int:
        """Length of the candidate vector."""
        return self._tables.n_transitions

    def log_likelihood_ratios(self, log_a: np.ndarray) -> np.ndarray:
        """Per-successful-trace ``log L_k`` at the candidate."""
        if log_a.shape != (self.n_columns,):
            raise EstimationError(
                f"candidate vector has shape {log_a.shape}, expected ({self.n_columns},)"
            )
        if self._counts.shape[0] == 0:
            return np.empty(0)
        return np.asarray(self._counts @ log_a).ravel() - self._log_b

    def log_f(self, log_a: np.ndarray) -> float:
        """``log f(A)`` (−inf when no trace succeeded)."""
        log_ratios = self.log_likelihood_ratios(log_a)
        if log_ratios.size == 0:
            return float("-inf")
        return float(logsumexp(log_ratios))

    def moments(self, log_a: np.ndarray) -> Moments:
        """``(log f, log g)`` at the candidate, for γ̂ and σ̂."""
        log_ratios = self.log_likelihood_ratios(log_a)
        if log_ratios.size == 0:
            return Moments(float("-inf"), float("-inf"), self._tables.n_total)
        return Moments(
            log_f=float(logsumexp(log_ratios)),
            log_g=float(logsumexp(2.0 * log_ratios)),
            n_total=self._tables.n_total,
        )

    def gradient_log_f(self, log_a: np.ndarray) -> np.ndarray:
        """Gradient of ``log f`` w.r.t. ``log_a`` (softmax-weighted counts).

        ``∂ log f / ∂ log a_t = Σ_k softmax(logL)_k · n_t(ω_k)`` — used by
        the gradient-based baseline optimisers. The gradient w.r.t. ``a_t``
        itself is this divided by ``a_t``.
        """
        log_ratios = self.log_likelihood_ratios(log_a)
        if log_ratios.size == 0:
            return np.zeros(self.n_columns)
        weights = np.exp(log_ratios - logsumexp(log_ratios))
        return np.asarray(weights @ self._counts).ravel()
