"""Monte Carlo random-search optimisation (Algorithm 2).

Starting from ``A_min = A_max = Â``, independent candidates are drawn from
the interval polytope via the Dirichlet samplers; a candidate improving the
running minimum (resp. maximum) of ``f`` replaces it. The search stops when
no candidate has improved either extreme for ``R`` consecutive rounds, or
after ``R_max`` rounds. The paper (§IV-A): the probability that the true
minimum lies below the reported one is then at most ``1/R``, and the method
converges almost surely (Spall 2003, Thm. 2.1).

The per-round improvement history is recorded so the evolution of the
confidence-interval bounds can be plotted (the paper's Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import OptimizationError
from repro.imcis.candidates import CandidateSpace
from repro.imcis.dirichlet import DirichletConfig
from repro.imcis.objective import ISObjective, Moments
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class RandomSearchConfig:
    """Stopping and sampling parameters of Algorithm 2.

    Attributes
    ----------
    r_undefeated:
        ``R`` — consecutive unsuccessful rounds before stopping (the paper's
        experiments use 1000).
    max_rounds:
        ``R_max`` — hard cap on total rounds.
    dirichlet:
        Candidate-row generation tuning (Sections IV-B/C).
    closed_form_single:
        Resolve single-observation rows by the paper's closed form instead
        of sampling them.
    record_history:
        Keep an entry per improvement for Figure-3-style plots.
    refine_rounds:
        Extra *local* search rounds per direction after the global phase,
        recentred on the incumbent extreme (see :mod:`repro.imcis.refine`).
        0 (default) keeps the paper's plain Algorithm 2.
    refine_rows_per_round:
        Rows resampled per refinement round.
    """

    r_undefeated: int = 1000
    max_rounds: int = 100_000
    dirichlet: DirichletConfig = field(default_factory=DirichletConfig)
    closed_form_single: bool = True
    record_history: bool = True
    refine_rounds: int = 0
    refine_rows_per_round: int = 4

    def __post_init__(self) -> None:
        if self.r_undefeated <= 0:
            raise OptimizationError("r_undefeated must be positive")
        if self.max_rounds < self.r_undefeated:
            raise OptimizationError("max_rounds must be at least r_undefeated")
        if self.refine_rounds < 0:
            raise OptimizationError("refine_rounds must be non-negative")


@dataclass(frozen=True)
class HistoryEntry:
    """State of the search after an improving round."""

    round: int
    gamma_min: float
    sigma_min: float
    gamma_max: float
    sigma_max: float


@dataclass
class RandomSearchResult:
    """Outcome of Algorithm 2.

    ``rounds_to_min``/``rounds_to_max`` are the rounds of the last
    improvement of each extreme — the ``nr`` statistics of Table I.
    """

    moments_min: Moments
    moments_max: Moments
    rows_min: dict[int, np.ndarray]
    rows_max: dict[int, np.ndarray]
    log_a_min: np.ndarray
    log_a_max: np.ndarray
    rounds_total: int
    rounds_to_min: int
    rounds_to_max: int
    stopped_by: str
    history: list[HistoryEntry] = field(default_factory=list)

    @property
    def rounds_to_converge(self) -> int:
        """Last round at which either extreme improved (``nr``)."""
        return max(self.rounds_to_min, self.rounds_to_max)


def random_search(
    objective: ISObjective,
    space: CandidateSpace,
    rng: np.random.Generator | int | None = None,
    config: RandomSearchConfig = RandomSearchConfig(),
) -> RandomSearchResult:
    """Run Algorithm 2 over *space*, optimising *objective* both ways."""
    generator = ensure_rng(rng)

    center_rows = space.center_rows()
    log_min_vec, log_max_vec = space.log_vectors(center_rows)
    best_min = objective.log_f(log_min_vec)
    best_max = objective.log_f(log_max_vec)
    rows_min = {s: r.copy() for s, r in center_rows.items()}
    rows_max = {s: r.copy() for s, r in center_rows.items()}
    best_min_vec = log_min_vec
    best_max_vec = log_max_vec

    history: list[HistoryEntry] = []

    def record(round_index: int) -> None:
        if not config.record_history:
            return
        m_min = objective.moments(best_min_vec)
        m_max = objective.moments(best_max_vec)
        history.append(
            HistoryEntry(round_index, m_min.gamma, m_min.sigma, m_max.gamma, m_max.sigma)
        )

    record(0)

    undefeated = 0
    rounds = 0
    rounds_to_min = 0
    rounds_to_max = 0
    stopped_by = "r_undefeated"
    if space.n_sampled_states == 0:
        # Nothing to search: constants and pinned rows fully determine the
        # extremes (e.g. every visited state saw a single transition).
        stopped_by = "no-free-rows"
    else:
        while undefeated < config.r_undefeated:
            if rounds >= config.max_rounds:
                stopped_by = "max_rounds"
                break
            rounds += 1
            candidate = space.sample_rows(generator)
            cand_min_vec, cand_max_vec = space.log_vectors(candidate)
            value_min = objective.log_f(cand_min_vec)
            value_max = objective.log_f(cand_max_vec)
            improved = False
            if value_min < best_min:
                best_min = value_min
                best_min_vec = cand_min_vec
                rows_min = {s: r.copy() for s, r in candidate.items()}
                rounds_to_min = rounds
                improved = True
            if value_max > best_max:
                best_max = value_max
                best_max_vec = cand_max_vec
                rows_max = {s: r.copy() for s, r in candidate.items()}
                rounds_to_max = rounds
                improved = True
            if improved:
                undefeated = 0
                record(rounds)
            else:
                undefeated += 1

    if config.refine_rounds > 0 and space.n_sampled_states > 0:
        from repro.imcis.refine import refine_extreme

        rows_min, accepted_min = refine_extreme(
            objective,
            space,
            rows_min,
            "min",
            config.refine_rounds,
            generator,
            rows_per_round=config.refine_rows_per_round,
        )
        rows_max, accepted_max = refine_extreme(
            objective,
            space,
            rows_max,
            "max",
            config.refine_rounds,
            generator,
            rows_per_round=config.refine_rows_per_round,
        )
        base_min, _ = space.log_vectors(rows_min)
        _, base_max = space.log_vectors(rows_max)
        best_min_vec, best_max_vec = base_min, base_max
        rounds += config.refine_rounds
        if accepted_min or accepted_max:
            record(rounds)

    moments_min = objective.moments(best_min_vec)
    moments_max = objective.moments(best_max_vec)
    if config.record_history and (not history or history[-1].round != rounds):
        history.append(
            HistoryEntry(
                rounds, moments_min.gamma, moments_min.sigma, moments_max.gamma, moments_max.sigma
            )
        )
    return RandomSearchResult(
        moments_min=moments_min,
        moments_max=moments_max,
        rows_min=rows_min,
        rows_max=rows_max,
        log_a_min=best_min_vec,
        log_a_max=best_max_vec,
        rounds_total=rounds,
        rounds_to_min=rounds_to_min,
        rounds_to_max=rounds_to_max,
        stopped_by=stopped_by,
        history=history,
    )
