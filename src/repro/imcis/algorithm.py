"""IMC Importance Sampling, end to end (Algorithm 1 = IMCIS).

Given an IMC ``[Â]``, an IS proposal ``B`` and a property ``φ``:

1. sample ``N`` traces under ``B``, keeping per-successful-trace transition
   count tables and proposal log-probabilities (lines 1–15);
2. build the objective ``f(A)``/``g(A)`` over the observed transitions
   (lines 16–18);
3. optimise ``f`` over ``A ∈ [Â]`` in both directions by Dirichlet random
   search (line 19 / Algorithm 2);
4. report the conservative ``(1 − δ)`` interval

   ``[ γ̂(A_min) − z σ̂(A_min)/√N ,  γ̂(A_max) + z σ̂(A_max)/√N ]``

(lines 20–23 and the output line). The interval is defined with respect to
the *entire* IMC instead of the single learnt chain ``Â`` — this is what
restores coverage of the true ``γ`` in the paper's Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.errors import EstimationError
from repro.imcis.candidates import CandidateSpace
from repro.obs import trace as _obs_trace
from repro.imcis.objective import ISObjective
from repro.imcis.random_search import (
    RandomSearchConfig,
    RandomSearchResult,
    random_search,
)
from repro.imcis.tables import ObservationTables
from repro.importance.estimator import (
    ISSample,
    estimate_from_sample,
    run_importance_sampling,
)
from repro.properties.logic import Formula
from repro.smc.intervals import normal_quantile
from repro.smc.results import ConfidenceInterval, EstimationResult
from repro.util.rng import ensure_rng


@dataclass
class IMCISResult:
    """Everything Algorithm 1 outputs (plus diagnostics).

    Attributes
    ----------
    interval:
        The final conservative confidence interval ``CI = [L, U]``.
    gamma_min, sigma_min, gamma_max, sigma_max:
        The estimates and standard deviations at ``A_min`` and ``A_max``.
    center_estimate:
        The plain IS estimate w.r.t. the centre chain ``Â`` from the *same*
        sample — the quantity standard IS would report (Table II's IS rows).
    search:
        The random-search trace (rounds, extreme rows, history).
    n_total, n_satisfied, n_undecided:
        Sampling statistics.
    """

    interval: ConfidenceInterval
    gamma_min: float
    sigma_min: float
    gamma_max: float
    sigma_max: float
    center_estimate: EstimationResult
    search: RandomSearchResult | None
    n_total: int
    n_satisfied: int
    n_undecided: int = 0

    @property
    def mid_value(self) -> float:
        """Mid point of the final interval (Table II's "Mid value")."""
        return self.interval.midpoint

    def summary(self) -> str:
        """A compact multi-line report of the run."""
        lines = [
            f"IMCIS: N = {self.n_total} traces "
            f"({self.n_satisfied} satisfied, {self.n_undecided} undecided)",
            f"  IS w.r.t. centre: {self.center_estimate.interval} "
            f"(estimate {self.center_estimate.estimate:.6g})",
            f"  gamma range:      [{self.gamma_min:.6g}, {self.gamma_max:.6g}]",
            f"  IMCIS interval:   {self.interval}",
        ]
        if self.search is not None:
            lines.append(
                f"  search: {self.search.rounds_total} rounds "
                f"(converged at {self.search.rounds_to_converge}, "
                f"stopped by {self.search.stopped_by}); "
                f"{len(self.search.rows_min)} states optimised"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class IMCISConfig:
    """Configuration of an IMCIS run."""

    confidence: float = 0.95
    search: RandomSearchConfig = field(default_factory=RandomSearchConfig)


def imcis_from_sample(
    imc: IMC,
    sample: ISSample,
    rng: np.random.Generator | int | None = None,
    config: IMCISConfig = IMCISConfig(),
) -> IMCISResult:
    """Run the optimisation half of Algorithm 1 on an existing sample.

    Splitting sampling from optimisation lets experiments evaluate IS and
    IMCIS on the *same* traces (as Algorithm 1 does) and re-run the search
    with different settings without re-simulating.
    """
    generator = ensure_rng(rng)
    center_estimate = estimate_from_sample(imc.center, sample, config.confidence)
    n_samples = sample.n_total
    z = normal_quantile(config.confidence)

    if sample.n_satisfied == 0:
        # No successful trace: f ≡ 0 over the whole polytope.
        interval = ConfidenceInterval(0.0, 0.0, config.confidence)
        return IMCISResult(
            interval=interval,
            gamma_min=0.0,
            sigma_min=0.0,
            gamma_max=0.0,
            sigma_max=0.0,
            center_estimate=center_estimate,
            search=None,
            n_total=n_samples,
            n_satisfied=0,
            n_undecided=sample.n_undecided,
        )

    with _obs_trace.span(
        "optimize", method="imcis", n_satisfied=sample.n_satisfied
    ) as sp:
        tables = ObservationTables.from_sample(sample)
        objective = ISObjective(tables)
        space = CandidateSpace(
            imc,
            tables,
            dirichlet=config.search.dirichlet,
            closed_form_single=config.search.closed_form_single,
        )
        search_result = random_search(objective, space, generator, config.search)
        sp.annotate(rounds=search_result.rounds_total)

    gamma_min = search_result.moments_min.gamma
    sigma_min = search_result.moments_min.sigma
    gamma_max = search_result.moments_max.gamma
    sigma_max = search_result.moments_max.sigma
    sqrt_n = np.sqrt(n_samples)
    lower = max(0.0, gamma_min - z * sigma_min / sqrt_n)
    upper = gamma_max + z * sigma_max / sqrt_n
    return IMCISResult(
        interval=ConfidenceInterval(lower, upper, config.confidence),
        gamma_min=gamma_min,
        sigma_min=sigma_min,
        gamma_max=gamma_max,
        sigma_max=sigma_max,
        center_estimate=center_estimate,
        search=search_result,
        n_total=n_samples,
        n_satisfied=sample.n_satisfied,
        n_undecided=sample.n_undecided,
    )


def imcis_estimate(
    imc: IMC,
    proposal: DTMC,
    formula: Formula,
    n_samples: int,
    rng: np.random.Generator | int | None = None,
    config: IMCISConfig = IMCISConfig(),
    max_steps: int | None = None,
    backend: str | None = "auto",
    workers: "int | str | None" = None,
) -> IMCISResult:
    """Full Algorithm 1: sample under *proposal*, optimise over *imc*.

    ``Remark 5.1``: candidate generation and the optimisation are
    independent of the proposal — any ``B`` absolutely continuous w.r.t.
    the chains in the IMC works; the experiments use the perfect proposal
    of the centre chain or a cross-entropy proposal. The sampling half
    runs on the selected simulation *backend*; *workers* shards it across
    a process pool.
    """
    if n_samples <= 0:
        raise EstimationError("n_samples must be positive")
    generator = ensure_rng(rng)
    # Fuse the centre-chain numerator into the loop: the centre estimate
    # then comes straight off arrays, while the kept tables feed the
    # polytope search. Count tables stay on (keep_counts default).
    sample = run_importance_sampling(
        proposal, formula, n_samples, generator, max_steps=max_steps,
        backend=backend, workers=workers, original=imc.center,
    )
    return imcis_from_sample(imc, sample, generator, config)
