"""Candidate space: which rows the random search actually optimises.

The minimisation problem (Equation 10) only involves states visited by
successful traces, and its structure lets several row classes be resolved
without search (Section III-C):

* **constant rows** — every interval in the row is degenerate (e.g. Dirac
  transitions like the absorbing states of Fig. 1): their contribution to
  ``f`` is a fixed offset;
* **pinned rows** — exactly one transition of the row was observed: the
  paper's closed form applies, ``a_ij = max(a⁻_ij, 1 − Σ_{j'≠j} a⁺_ij')``
  for the minimisation (and symmetrically ``min(a⁺_ij, 1 − Σ_{j'≠j}
  a⁻_ij')`` for the maximisation) — no sampling needed;
* **sampled rows** — two or more observed transitions: these are the
  dimensions the Dirichlet random search explores.

A *candidate* is a mapping from sampled states to feasible rows; this module
assembles the corresponding ``log_a`` vectors for the objective (one per
optimisation direction, since pinned values differ between min and max).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.imc import IMC
from repro.errors import EstimationError, OptimizationError
from repro.imcis.dirichlet import DirichletConfig, DirichletRowSampler
from repro.imcis.tables import ObservationTables

#: Row classification tags.
CONSTANT, PINNED, SAMPLED = "constant", "pinned", "sampled"


def _safe_log(value: float) -> float:
    return math.log(value) if value > 0.0 else float("-inf")


@dataclass
class StatePlan:
    """Per-state optimisation plan."""

    state: int
    kind: str
    support: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    center: np.ndarray
    #: Objective columns for this state's observed transitions.
    obs_columns: np.ndarray
    #: Positions of the observed transitions within ``support``.
    obs_positions: np.ndarray
    sampler: DirichletRowSampler | None = None
    #: Pinned per-direction log values (PINNED rows only), aligned with
    #: ``obs_columns``.
    pinned_log_min: np.ndarray | None = None
    pinned_log_max: np.ndarray | None = None


class CandidateSpace:
    """Feasible-candidate generator over an IMC, tied to observation tables.

    Parameters
    ----------
    imc:
        The interval chain ``[Â]``; its ``center`` is the round-0 candidate.
    tables:
        Observed transitions/counts from the IS run.
    dirichlet:
        Row-sampler configuration.
    closed_form_single:
        Apply the paper's closed form to single-observation rows (default).
        When disabled those rows are Dirichlet-sampled like any other.
    """

    def __init__(
        self,
        imc: IMC,
        tables: ObservationTables,
        dirichlet: DirichletConfig = DirichletConfig(),
        closed_form_single: bool = True,
    ):
        self._imc = imc
        self._tables = tables
        self._config = dirichlet
        center_chain = imc.center
        columns_by_state = tables.columns_by_state()

        self.plans: list[StatePlan] = []
        n_cols = tables.n_transitions
        self._base_min = np.zeros(n_cols)
        self._base_max = np.zeros(n_cols)

        for state, cols in sorted(columns_by_state.items()):
            support, lower, upper = imc.row_bounds(state)
            position_of = {int(j): pos for pos, j in enumerate(support)}
            obs_targets = [tables.transitions[c][1] for c in cols]
            missing = [j for j in obs_targets if j not in position_of]
            if missing:
                raise EstimationError(
                    f"transition ({state}, {missing[0]}) was observed in a "
                    "successful trace but is structurally impossible in the IMC"
                )
            obs_positions = np.array([position_of[j] for j in obs_targets], dtype=int)
            obs_columns = np.array(cols, dtype=int)
            center = np.array(
                [center_chain.probability(state, int(j)) for j in support], dtype=float
            )
            widths = upper - lower
            plan = StatePlan(
                state=state,
                kind=CONSTANT,
                support=support,
                lower=lower,
                upper=upper,
                center=center,
                obs_columns=obs_columns,
                obs_positions=obs_positions,
            )
            if support.size < 2 or float(widths.max()) <= dirichlet.width_tolerance:
                # Whole row fixed: contributions are constants (log of the
                # unique feasible value).
                values = center if support.size >= 2 else np.ones(1)
                logs = np.array([_safe_log(float(values[p])) for p in obs_positions])
                self._base_min[obs_columns] = logs
                self._base_max[obs_columns] = logs
            elif closed_form_single and obs_columns.size == 1:
                plan.kind = PINNED
                pos = int(obs_positions[0])
                others = np.arange(support.size) != pos
                a_min = max(float(lower[pos]), 1.0 - float(upper[others].sum()))
                a_max = min(float(upper[pos]), 1.0 - float(lower[others].sum()))
                if a_min > a_max + 1e-12:
                    raise OptimizationError(
                        f"state {state}: closed-form bounds are empty "
                        f"({a_min} > {a_max}); the IMC row is inconsistent"
                    )
                plan.pinned_log_min = np.array([_safe_log(a_min)])
                plan.pinned_log_max = np.array([_safe_log(a_max)])
                self._base_min[obs_columns] = plan.pinned_log_min
                self._base_max[obs_columns] = plan.pinned_log_max
            else:
                plan.kind = SAMPLED
                plan.sampler = DirichletRowSampler(support, center, lower, upper, dirichlet)
            self.plans.append(plan)

        self.sampled_plans = [p for p in self.plans if p.kind == SAMPLED]

    @property
    def imc(self) -> IMC:
        """The interval chain candidates are drawn from."""
        return self._imc

    @property
    def tables(self) -> ObservationTables:
        """The observation tables the space is tied to."""
        return self._tables

    @property
    def n_sampled_states(self) -> int:
        """Number of states the random search actually explores."""
        return len(self.sampled_plans)

    def center_rows(self) -> dict[int, np.ndarray]:
        """The round-0 candidate: the centre ``Â`` rows of sampled states."""
        return {p.state: p.center.copy() for p in self.sampled_plans}

    def sample_rows(self, rng: np.random.Generator) -> dict[int, np.ndarray]:
        """Draw one candidate (per-sampled-state feasible rows)."""
        return {p.state: p.sampler.sample(rng) for p in self.sampled_plans}

    def log_vectors(self, rows: dict[int, np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the ``(min-variant, max-variant)`` objective vectors.

        The two vectors share the sampled/constant entries and differ only
        on pinned columns.
        """
        log_min = self._base_min.copy()
        log_max = self._base_max.copy()
        with np.errstate(divide="ignore"):
            for plan in self.sampled_plans:
                logs = np.log(rows[plan.state][plan.obs_positions])
                log_min[plan.obs_columns] = logs
                log_max[plan.obs_columns] = logs
        return log_min, log_max

    def row_summary(
        self, rows: dict[int, np.ndarray], direction: str
    ) -> dict[tuple[int, int], float]:
        """Transition-probability assignment of a candidate, for reporting.

        Includes sampled rows and the pinned values of *direction*
        (``"min"`` or ``"max"``). Used by the Table I statistics to read
        off ``a_min``/``c_min`` etc.
        """
        if direction not in ("min", "max"):
            raise OptimizationError("direction must be 'min' or 'max'")
        summary: dict[tuple[int, int], float] = {}
        for plan in self.plans:
            if plan.kind == SAMPLED:
                row = rows[plan.state]
                for pos, j in enumerate(plan.support):
                    summary[(plan.state, int(j))] = float(row[pos])
            elif plan.kind == PINNED:
                logs = plan.pinned_log_min if direction == "min" else plan.pinned_log_max
                target = self._tables.transitions[int(plan.obs_columns[0])][1]
                value = math.exp(float(logs[0])) if logs[0] != float("-inf") else 0.0
                summary[(plan.state, target)] = value
        return summary
