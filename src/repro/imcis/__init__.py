"""IMCIS — importance sampling of interval Markov chains (the paper's core)."""

from repro.imcis.algorithm import (
    IMCISConfig,
    IMCISResult,
    imcis_estimate,
    imcis_from_sample,
)
from repro.imcis.candidates import CandidateSpace, StatePlan
from repro.imcis.dirichlet import DirichletConfig, DirichletRowSampler
from repro.imcis.objective import ISObjective, Moments
from repro.imcis.optimizers import (
    OptimizerOutcome,
    projected_gradient,
    slsqp,
)
from repro.imcis.random_search import (
    HistoryEntry,
    RandomSearchConfig,
    RandomSearchResult,
    random_search,
)
from repro.imcis.refine import refine_extreme
from repro.imcis.tables import ObservationTables

__all__ = [
    "CandidateSpace",
    "DirichletConfig",
    "DirichletRowSampler",
    "HistoryEntry",
    "IMCISConfig",
    "IMCISResult",
    "ISObjective",
    "Moments",
    "ObservationTables",
    "OptimizerOutcome",
    "RandomSearchConfig",
    "RandomSearchResult",
    "StatePlan",
    "imcis_estimate",
    "imcis_from_sample",
    "projected_gradient",
    "random_search",
    "refine_extreme",
    "slsqp",
]
