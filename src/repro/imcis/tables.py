"""Observation tables: the data Algorithm 1 hands to the optimiser.

After sampling, the successful traces are reduced to a sparse count matrix
``N`` (rows = successful traces, columns = *observed transitions*) plus the
per-trace log-probability under the proposal. Everything the optimisation
step needs — the sets ``V`` and ``T`` of Algorithm 1 line 16, and the data
behind ``f(A)``/``g(A)`` — lives here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.paths import TransitionCounts
from repro.errors import EstimationError
from repro.importance.estimator import ISSample


@dataclass(frozen=True)
class ObservationTables:
    """Sparse per-trace transition counts over the observed transitions.

    Attributes
    ----------
    transitions:
        The observed transitions ``T`` in column order: ``transitions[t]``
        is the ``(source, target)`` pair of objective column ``t``.
    counts:
        CSR matrix of shape ``(M, |T|)``; entry ``(k, t)`` is ``n_t(ω_k)``.
    log_proposal:
        Length-``M`` vector of ``log P_B(ω_k)``.
    n_total:
        Total number of sampled traces ``N`` (successful or not).
    """

    transitions: tuple[tuple[int, int], ...]
    counts: sparse.csr_matrix
    log_proposal: np.ndarray
    n_total: int

    @classmethod
    def from_sample(cls, sample: ISSample) -> "ObservationTables":
        """Build the tables from an importance-sampling run.

        Samples carrying array-native counts
        (:class:`~repro.smc.kernels.TraceCounts`, the kernel backend's
        representation) build the sparse matrix directly from the COO
        arrays; the column order — first occurrence scanning traces in
        order — matches the dict path exactly, because the engines
        aggregate both representations from the same sorted
        ``(trace, key)`` run-length encoding.
        """
        if sample.n_total <= 0:
            raise EstimationError("sample contains no traces")
        arrays = getattr(sample, "count_arrays", None)
        if arrays is not None:
            return cls._from_arrays(arrays, sample)
        column_of: dict[tuple[int, int], int] = {}
        transitions: list[tuple[int, int]] = []
        rows: list[int] = []
        cols: list[int] = []
        data: list[int] = []
        for k, counts in enumerate(sample.counts):
            for pair, n in counts.items():
                col = column_of.get(pair)
                if col is None:
                    col = len(transitions)
                    column_of[pair] = col
                    transitions.append(pair)
                rows.append(k)
                cols.append(col)
                data.append(n)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(sample.counts), len(transitions)),
            dtype=float,
        )
        return cls(
            transitions=tuple(transitions),
            counts=matrix,
            log_proposal=np.asarray(sample.log_proposal, dtype=float),
            n_total=sample.n_total,
        )

    @classmethod
    def _from_arrays(cls, arrays, sample: ISSample) -> "ObservationTables":
        """Vectorized table construction from COO per-trace counts."""
        keys = arrays.sources * np.int64(arrays.n_states) + arrays.targets
        uniq, first_idx = np.unique(keys, return_index=True)
        # Column order is first occurrence in (trace, key) scan order —
        # identical to the dict path's insertion order.
        order = np.argsort(first_idx, kind="stable")
        col_of = np.empty(uniq.size, dtype=np.int64)
        col_of[order] = np.arange(uniq.size, dtype=np.int64)
        cols = col_of[np.searchsorted(uniq, keys)]
        matrix = sparse.csr_matrix(
            (arrays.counts.astype(float), (arrays.trace_ids, cols)),
            shape=(arrays.n_traces, int(uniq.size)),
            dtype=float,
        )
        col_keys = uniq[order]
        sources, targets = np.divmod(col_keys, np.int64(arrays.n_states))
        return cls(
            transitions=tuple(zip(sources.tolist(), targets.tolist())),
            counts=matrix,
            log_proposal=np.asarray(sample.log_proposal, dtype=float),
            n_total=sample.n_total,
        )

    @classmethod
    def from_counts(
        cls,
        count_tables: list[TransitionCounts],
        log_proposal: list[float],
        n_total: int,
    ) -> "ObservationTables":
        """Build the tables from raw count tables (mainly for tests)."""
        sample = ISSample(
            n_total=n_total, counts=list(count_tables), log_proposal=list(log_proposal)
        )
        return cls.from_sample(sample)

    @property
    def n_successful(self) -> int:
        """Number of successful traces ``M``."""
        return self.counts.shape[0]

    @property
    def n_transitions(self) -> int:
        """Number of distinct observed transitions ``|T|``."""
        return len(self.transitions)

    def visited_states(self) -> list[int]:
        """The set ``V`` of source states observed in successful traces."""
        return sorted({i for (i, _j) in self.transitions})

    def columns_by_state(self) -> dict[int, list[int]]:
        """Objective columns grouped by source state."""
        grouped: dict[int, list[int]] = {}
        for col, (i, _j) in enumerate(self.transitions):
            grouped.setdefault(i, []).append(col)
        return grouped

    def column_index(self) -> dict[tuple[int, int], int]:
        """Mapping ``(i, j) → column``."""
        return {pair: col for col, pair in enumerate(self.transitions)}

    def total_counts(self) -> np.ndarray:
        """Per-column total occurrence counts across successful traces."""
        return np.asarray(self.counts.sum(axis=0)).ravel()
