"""Dirichlet generation of candidate DTMCs inside the IMC (Sections IV-B/C).

A candidate row for state ``s_i`` must be a probability distribution lying
entrywise in ``[â_i − ε_i, â_i + ε_i]``. Uniform per-coordinate sampling
followed by normalisation would almost never satisfy the constraints; the
paper instead draws the whole row from a Dirichlet distribution centred on
``â_i`` whose concentration ``K_i`` is tuned so every coordinate's standard
deviation is slightly *above* its margin ``ε_ij``:

    K_ij = â_ij (1 − â_ij) / ε_ij² − 1,      K_i = min_j K_ij,

then rejects rows falling outside the box (Algorithm 2, lines 5–11). Two
§IV-C refinements are implemented:

* ``λ``-inflation — after a run of rejections, multiply ``K_i`` by
  ``λ = 1.1``: shrinks all coordinate variances while preserving relative
  means, raising the acceptance rate on wide rows (§IV-C-1). The inflation
  state is *persistent across calls* (and decays slowly on success), so a
  row that needs inflation learns it once instead of rediscovering it for
  every candidate;
* two-scale split — coordinates whose ``K_ij`` is orders of magnitude above
  the row minimum would get far too much variance under ``K_i = min``;
  they are sampled *uniformly* on their consistent interval first, and the
  remaining coordinates conditionally via a rescaled Dirichlet with

    K_i = min_j' ( m_j'(β − m_j') / ε_j'² − 1 ) / β,

  where ``β`` is the leftover mass and ``m_j'`` the conditional means
  (§IV-C-2 — note the paper's displayed formula drops the leading ``m_j'``
  factor; the version here is the one its own derivation (Eq. 12) gives).

Draws are batched: each attempt round asks the generator for a block of
Dirichlet vectors and tests them vectorised, which keeps the Python
overhead per accepted row small even on heavily-rejecting rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizationError


@dataclass(frozen=True)
class DirichletConfig:
    """Tuning knobs for candidate-row generation.

    Attributes
    ----------
    k_strategy:
        How ``K_i`` aggregates the per-coordinate ``K_ij``: ``"min"``
        (the paper's choice), ``"mean"`` or ``"median"`` (§IV-C-2 mentions
        both as alternatives).
    outlier_ratio:
        Coordinates with ``K_ij > outlier_ratio × min K_ij`` are handled by
        the two-scale split. ``inf`` disables the split.
    inflation:
        The ``λ`` of §IV-C-1.
    inflate_after:
        Consecutive rejected *batches* before ``K`` is inflated.
    decay:
        Multiplicative decay of the learnt inflation after each accepted
        row (drifts back towards the paper's nominal ``K_i``).
    batch_size:
        Dirichlet vectors drawn and tested per attempt round.
    max_attempts:
        Hard cap on rejection-sampling attempts per row.
    width_tolerance:
        Interval half-widths at or below this are treated as exact values.
    min_k:
        Lower clamp on ``K_i`` (guards against huge margins).
    alpha_floor:
        Floor on Dirichlet parameters (guards against zero centre values).
    """

    k_strategy: str = "min"
    outlier_ratio: float = 100.0
    inflation: float = 1.1
    inflate_after: int = 4
    decay: float = 0.995
    batch_size: int = 16
    max_attempts: int = 1_000_000
    width_tolerance: float = 1e-12
    min_k: float = 1.0
    alpha_floor: float = 1e-8

    def __post_init__(self) -> None:
        if self.k_strategy not in ("min", "mean", "median"):
            raise OptimizationError(f"unknown k_strategy {self.k_strategy!r}")
        if self.inflation <= 1.0:
            raise OptimizationError("inflation must exceed 1")
        if self.outlier_ratio <= 1.0:
            raise OptimizationError("outlier_ratio must exceed 1")
        if not 0.0 < self.decay <= 1.0:
            raise OptimizationError("decay must be in (0, 1]")
        if self.batch_size <= 0:
            raise OptimizationError("batch_size must be positive")


def aggregate_k(values: np.ndarray, strategy: str) -> float:
    """Combine per-coordinate concentrations into ``K_i``."""
    if strategy == "min":
        return float(values.min())
    if strategy == "mean":
        return float(values.mean())
    return float(np.median(values))


@dataclass
class RowSampleStats:
    """Diagnostics accumulated across calls to :meth:`DirichletRowSampler.sample`."""

    samples: int = 0
    rejections: int = 0
    inflations: int = 0


class DirichletRowSampler:
    """Samples one state's candidate row within its interval constraints.

    Parameters
    ----------
    support:
        Indices of the structurally possible successors (for reporting).
    center:
        The row of ``Â`` restricted to the support (``â_i``); must sum to 1.
    lower, upper:
        Interval bounds aligned with *support*.
    config:
        Tuning knobs; see :class:`DirichletConfig`.
    """

    def __init__(
        self,
        support: np.ndarray,
        center: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        config: DirichletConfig = DirichletConfig(),
    ):
        self.support = np.asarray(support, dtype=int)
        self.center = np.asarray(center, dtype=float)
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        self.config = config
        self.stats = RowSampleStats()
        size = self.support.size
        if not (self.center.size == self.lower.size == self.upper.size == size):
            raise OptimizationError("support/center/bound sizes differ")
        if size < 2:
            raise OptimizationError(
                "rows with fewer than two possible successors are constants — "
                "handle them outside the sampler"
            )
        if abs(float(self.center.sum()) - 1.0) > 1e-6:
            raise OptimizationError("the centre row must be a probability distribution")

        widths = (self.upper - self.lower) / 2.0
        self._fixed = widths <= config.width_tolerance
        free = ~self._fixed
        if not np.any(free):
            raise OptimizationError("all coordinates are fixed — row is a constant")
        free_idx = np.flatnonzero(free)
        eps_free = np.maximum(widths[free_idx], config.width_tolerance)
        centre_free = self.center[free_idx]
        k_values = centre_free * (1.0 - centre_free) / eps_free**2 - 1.0
        k_values = np.maximum(k_values, config.min_k)
        k_min = float(k_values.min())
        outlier = k_values > config.outlier_ratio * k_min
        if np.count_nonzero(~outlier) < 2:
            # The split needs at least two Dirichlet coordinates left over.
            outlier = np.zeros_like(outlier)
        self._uniform_idx = free_idx[outlier]
        if self._uniform_idx.size:
            order = np.argsort(-k_values[outlier])
            self._uniform_idx = self._uniform_idx[order]
        self._group = free_idx[~outlier]
        self._group_eps = eps_free[~outlier]
        self._group_centre = centre_free[~outlier]
        self._group_lower = self.lower[self._group]
        self._group_upper = self.upper[self._group]
        self._base_k = aggregate_k(k_values[~outlier], config.k_strategy)
        self._fixed_mass = float(self.center[self._fixed].sum()) if np.any(self._fixed) else 0.0
        #: Learnt inflation multiplier (persists across calls, decays back).
        self._k_scale = 1.0

    @property
    def uses_two_scale_split(self) -> bool:
        """True when some coordinates are uniform-sampled (§IV-C-2)."""
        return self._uniform_idx.size > 0

    @property
    def concentration(self) -> float:
        """The (unconditional) aggregate ``K_i`` of the Dirichlet group."""
        return self._base_k

    @property
    def k_scale(self) -> float:
        """Current learnt λ-inflation multiplier."""
        return self._k_scale

    def center_row(self) -> np.ndarray:
        """The centre row ``â_i`` (the round-0 candidate of Algorithm 2)."""
        return self.center.copy()

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one feasible candidate row (aligned with ``support``)."""
        cfg = self.config
        values = np.empty_like(self.center)
        values[self._fixed] = self.center[self._fixed]

        attempts = 0
        rejected_batches = 0
        while attempts < cfg.max_attempts:
            budget = self._sample_uniform_coords(rng, values)
            if budget is None:
                attempts += 1
                continue
            accepted = self._sample_group(rng, values, budget)
            attempts += cfg.batch_size
            if accepted:
                self.stats.samples += 1
                self._k_scale = max(1.0, self._k_scale * cfg.decay)
                return values
            rejected_batches += 1
            self.stats.rejections += cfg.batch_size
            if rejected_batches >= cfg.inflate_after:
                self._k_scale *= cfg.inflation
                self.stats.inflations += 1
                rejected_batches = 0
        raise OptimizationError(
            f"could not sample a feasible row after {cfg.max_attempts} attempts "
            f"(support size {self.support.size}); the interval constraints may be "
            "nearly degenerate — consider raising max_attempts"
        )

    # ------------------------------------------------------------------
    def _sample_uniform_coords(self, rng: np.random.Generator, values: np.ndarray) -> float | None:
        """Fill the uniform (outlier) coordinates; returns leftover budget."""
        budget = 1.0 - self._fixed_mass
        if self._uniform_idx.size == 0:
            return budget
        remaining = list(self._uniform_idx) + list(self._group)
        for pos, idx in enumerate(self._uniform_idx):
            rest = remaining[pos + 1 :]
            rest_lo = float(self.lower[rest].sum())
            rest_up = float(self.upper[rest].sum())
            low = max(float(self.lower[idx]), budget - rest_up)
            high = min(float(self.upper[idx]), budget - rest_lo)
            if low > high:
                return None
            value = rng.uniform(low, high)
            values[idx] = value
            budget -= value
        return budget

    def _sample_group(self, rng: np.random.Generator, values: np.ndarray, budget: float) -> bool:
        """Fill the Dirichlet group from *budget*; True on success."""
        group = self._group
        if group.size == 0:
            return abs(budget) <= 1e-9
        if group.size == 1:
            idx = group[0]
            if self.lower[idx] - 1e-12 <= budget <= self.upper[idx] + 1e-12:
                values[idx] = min(max(budget, self.lower[idx]), self.upper[idx])
                return True
            return False
        if budget <= 0.0:
            return False

        centre = self._group_centre
        total_centre = float(centre.sum())
        if total_centre <= 0.0:
            centre = np.full(group.size, 1.0 / group.size)
            total_centre = 1.0
        if self.uses_two_scale_split:
            means = budget * centre / total_centre
            k_values = (
                means * np.maximum(budget - means, 1e-15) / self._group_eps**2 - 1.0
            ) / budget
            k = max(
                aggregate_k(np.maximum(k_values, self.config.min_k), self.config.k_strategy),
                self.config.min_k,
            )
        else:
            k = self._base_k
        alpha = np.maximum(k * self._k_scale * centre, self.config.alpha_floor)
        block = rng.dirichlet(alpha, size=self.config.batch_size)
        candidates = budget * block
        feasible = np.all(
            (candidates >= self._group_lower - 1e-12)
            & (candidates <= self._group_upper + 1e-12),
            axis=1,
        )
        winners = np.flatnonzero(feasible)
        if winners.size == 0:
            return False
        values[group] = candidates[winners[0]]
        return True
