"""Local refinement of the random-search extremes (an extension).

Algorithm 2 samples every candidate from Dirichlet distributions centred on
the *learnt* chain ``Â``. In high dimension (the repair benchmarks optimise
100+ rows jointly) the incumbent extreme quickly becomes better than the
best of any feasible number of fresh centre-based draws, and the search
stalls short of the polytope's true extremes.

This module adds the natural local step the paper's conclusion asks about
("compare the current algorithm with other optimisation schemes"): continue
the search with candidates **recentred on the incumbent extreme**, one
direction at a time, resampling a random subset of rows per round. Accepted
moves keep walking towards the corner; the same Dirichlet machinery,
feasibility guarantees and stopping rule apply. Disabled by default —
enable via :attr:`RandomSearchConfig.refine_rounds` (or call
:func:`refine_extreme` directly) to reproduce interval widths closer to the
paper's Table II on the large case studies.
"""

from __future__ import annotations

import numpy as np

from repro.imcis.candidates import CandidateSpace
from repro.imcis.dirichlet import DirichletConfig, DirichletRowSampler
from repro.imcis.objective import ISObjective
from repro.util.rng import ensure_rng


def _sampler_at(
    plan, center: np.ndarray, config: DirichletConfig
) -> DirichletRowSampler:
    """A row sampler recentred on *center* (kept inside the bounds)."""
    # Nudge the centre off the exact bounds so concentrations stay finite.
    width = plan.upper - plan.lower
    safe = np.clip(center, plan.lower + 1e-12 * width, plan.upper - 1e-12 * width)
    safe = safe / safe.sum()
    return DirichletRowSampler(plan.support, safe, plan.lower, plan.upper, config)


def refine_extreme(
    objective: ISObjective,
    space: CandidateSpace,
    rows: dict[int, np.ndarray],
    direction: str,
    rounds: int,
    rng: np.random.Generator | int | None = None,
    rows_per_round: int = 4,
    stall_limit: int | None = None,
) -> tuple[dict[int, np.ndarray], int]:
    """Greedy local search from an incumbent extreme.

    Parameters
    ----------
    rows:
        The incumbent sampled-state rows (e.g. ``RandomSearchResult.rows_min``).
    direction:
        ``"min"`` or ``"max"``.
    rounds:
        Maximum refinement rounds.
    rows_per_round:
        How many randomly chosen state rows are resampled per round
        (small subsets give a higher acceptance rate in high dimension).
    stall_limit:
        Stop early after this many consecutive non-improving rounds
        (default: ``rounds``, i.e. never early).

    Returns the refined rows and the number of accepted improvements.
    """
    if direction not in ("min", "max"):
        raise ValueError("direction must be 'min' or 'max'")
    generator = ensure_rng(rng)
    plans = space.sampled_plans
    if not plans or rounds <= 0:
        return {s: r.copy() for s, r in rows.items()}, 0
    stall_limit = rounds if stall_limit is None else stall_limit

    current = {s: r.copy() for s, r in rows.items()}
    config = space.sampled_plans[0].sampler.config if plans[0].sampler else DirichletConfig()
    samplers = {p.state: _sampler_at(p, current[p.state], config) for p in plans}

    def value(candidate_rows) -> float:
        log_min, log_max = space.log_vectors(candidate_rows)
        vec = log_min if direction == "min" else log_max
        return objective.log_f(vec)

    sign = 1.0 if direction == "max" else -1.0
    best = sign * value(current)
    improvements = 0
    stall = 0
    states = [p.state for p in plans]
    for _ in range(rounds):
        chosen = generator.choice(
            len(states), size=min(rows_per_round, len(states)), replace=False
        )
        candidate = {s: r for s, r in current.items()}
        for idx in chosen:
            state = states[int(idx)]
            candidate[state] = samplers[state].sample(generator)
        score = sign * value(candidate)
        if score > best:
            best = score
            for idx in chosen:
                state = states[int(idx)]
                current[state] = candidate[state]
                # Re-centre the sampler on the accepted row.
                plan = next(p for p in plans if p.state == state)
                samplers[state] = _sampler_at(plan, current[state], config)
            improvements += 1
            stall = 0
        else:
            stall += 1
            if stall >= stall_limit:
                break
    return current, improvements
