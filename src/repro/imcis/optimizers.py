"""Alternative optimisers for the IMCIS objective (paper appendix).

The paper's appendix discusses two statistical optimisation schemes as
potential replacements for the random search and lists their obstacles:

* **projected (stochastic) gradient descent** — cheap gradients (the
  likelihood of a path is polynomial in ``A``) but every update must be
  projected back into the interval polytope;
* **interior-point / constrained programming** — handles the constraints
  natively but scales poorly with their number.

Both are implemented here, operating on the same
:class:`~repro.imcis.candidates.CandidateSpace` as the random search so the
ablation benchmark (`benchmarks/bench_ablation_optimizers.py`) can compare
the three on identical problems. The gradient method implements the
projection step the appendix calls for with the box-simplex water-filling
projection; the constrained-programming baseline uses scipy's SLSQP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.core.imc import project_row_to_simplex
from repro.errors import OptimizationError
from repro.imcis.candidates import CandidateSpace
from repro.imcis.objective import ISObjective, Moments
from repro.util.rng import ensure_rng

#: Optimisation directions.
MINIMIZE, MAXIMIZE = "min", "max"


@dataclass
class OptimizerOutcome:
    """Result of one direction of an alternative optimiser."""

    direction: str
    moments: Moments
    rows: dict[int, np.ndarray]
    log_a: np.ndarray
    iterations: int
    method: str


def _check_direction(direction: str) -> None:
    if direction not in (MINIMIZE, MAXIMIZE):
        raise OptimizationError(f"direction must be '{MINIMIZE}' or '{MAXIMIZE}'")


def _vector_for(space: CandidateSpace, rows: dict[int, np.ndarray], direction: str) -> np.ndarray:
    log_min, log_max = space.log_vectors(rows)
    return log_min if direction == MINIMIZE else log_max


def _f_and_grad(
    objective: ISObjective,
    space: CandidateSpace,
    rows: dict[int, np.ndarray],
    direction: str,
) -> tuple[float, dict[int, np.ndarray]]:
    """``f`` and its gradient w.r.t. the sampled rows (zero elsewhere)."""
    log_a = _vector_for(space, rows, direction)
    log_f = objective.log_f(log_a)
    f_value = math.exp(log_f) if log_f != float("-inf") else 0.0
    # d f / d a_t = f * d log f / d log a_t / a_t
    grad_log = objective.gradient_log_f(log_a)
    grads: dict[int, np.ndarray] = {}
    for plan in space.sampled_plans:
        row = rows[plan.state]
        grad_row = np.zeros_like(row)
        for col, pos in zip(plan.obs_columns, plan.obs_positions):
            a = float(row[pos])
            if a > 0:
                grad_row[pos] = f_value * float(grad_log[col]) / a
        grads[plan.state] = grad_row
    return f_value, grads


def projected_gradient(
    objective: ISObjective,
    space: CandidateSpace,
    direction: str,
    learning_rate: float = 0.5,
    iterations: int = 200,
    rng: np.random.Generator | int | None = None,
    stochastic: bool = False,
) -> OptimizerOutcome:
    """Projected (optionally stochastic) gradient descent on ``f``.

    With ``stochastic=True`` the gradient of a single random successful
    path replaces the full gradient (Equation 14 of the appendix);
    otherwise the full-batch gradient is used (Equation 13). Steps are
    normalised per state-row and projected back onto the box-simplex.
    """
    _check_direction(direction)
    generator = ensure_rng(rng)
    rows = space.center_rows()
    sign = -1.0 if direction == MINIMIZE else 1.0

    counts = objective.tables.counts
    log_b = objective.tables.log_proposal

    for _ in range(iterations):
        if stochastic and counts.shape[0] > 0:
            # Gradient of one random path's likelihood (appendix, Eq. 14).
            k = int(generator.integers(counts.shape[0]))
            log_a = _vector_for(space, rows, direction)
            row_k = counts.getrow(k)
            log_l = float(np.asarray(row_k @ log_a).ravel()[0]) - float(log_b[k])
            weight = math.exp(log_l)
            grads = {}
            cols = {int(c): float(v) for c, v in zip(row_k.indices, row_k.data)}
            for plan in space.sampled_plans:
                grad_row = np.zeros_like(rows[plan.state])
                for col, pos in zip(plan.obs_columns, plan.obs_positions):
                    n = cols.get(int(col))
                    if n:
                        a = float(rows[plan.state][pos])
                        if a > 0:
                            grad_row[pos] = weight * n / a
                grads[plan.state] = grad_row
        else:
            _, grads = _f_and_grad(objective, space, rows, direction)
        for plan in space.sampled_plans:
            grad_row = grads[plan.state]
            norm = float(np.abs(grad_row).max())
            if norm == 0.0:
                continue
            step = sign * learning_rate * grad_row / norm
            # Scale the step to the row's interval widths so one iteration
            # cannot jump across the whole box.
            widths = plan.upper - plan.lower
            step = step * float(widths.max())
            updated = rows[plan.state] + step
            rows[plan.state] = project_row_to_simplex(updated, plan.lower, plan.upper)

    log_a = _vector_for(space, rows, direction)
    return OptimizerOutcome(
        direction=direction,
        moments=objective.moments(log_a),
        rows=rows,
        log_a=log_a,
        iterations=iterations,
        method="projected-sgd" if stochastic else "projected-gd",
    )


def slsqp(
    objective: ISObjective,
    space: CandidateSpace,
    direction: str,
    max_iterations: int = 200,
) -> OptimizerOutcome:
    """Constrained-programming baseline via scipy SLSQP.

    Variables are the concatenated support rows of the sampled states;
    constraints are per-row probability sums and the interval box.
    """
    _check_direction(direction)
    plans = space.sampled_plans
    if not plans:
        rows: dict[int, np.ndarray] = {}
        log_a = _vector_for(space, rows, direction)
        return OptimizerOutcome(direction, objective.moments(log_a), rows, log_a, 0, "slsqp")

    offsets: list[tuple[int, int]] = []
    start = 0
    for plan in plans:
        offsets.append((start, start + plan.support.size))
        start += plan.support.size
    dimension = start
    sign = 1.0 if direction == MINIMIZE else -1.0

    def unpack(x: np.ndarray) -> dict[int, np.ndarray]:
        return {
            plan.state: x[a:b] for plan, (a, b) in zip(plans, offsets)
        }

    def fun(x: np.ndarray) -> float:
        rows = unpack(x)
        log_a = _vector_for(space, rows, direction)
        log_f = objective.log_f(log_a)
        return sign * (math.exp(log_f) if log_f != float("-inf") else 0.0)

    def jac(x: np.ndarray) -> np.ndarray:
        rows = unpack(x)
        _, grads = _f_and_grad(objective, space, rows, direction)
        out = np.zeros(dimension)
        for plan, (a, b) in zip(plans, offsets):
            out[a:b] = sign * grads[plan.state]
        return out

    x0 = np.concatenate([plan.center for plan in plans])
    bounds = optimize.Bounds(
        np.concatenate([plan.lower for plan in plans]),
        np.concatenate([plan.upper for plan in plans]),
    )
    constraints = []
    for plan, (a, b) in zip(plans, offsets):
        matrix = np.zeros((1, dimension))
        matrix[0, a:b] = 1.0
        constraints.append(optimize.LinearConstraint(matrix, 1.0, 1.0))

    result = optimize.minimize(
        fun,
        x0,
        jac=jac,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": 1e-18},
    )
    rows = unpack(np.clip(result.x, bounds.lb, bounds.ub))
    # Repair tiny simplex violations from the solver.
    for plan in plans:
        rows[plan.state] = project_row_to_simplex(rows[plan.state], plan.lower, plan.upper)
    log_a = _vector_for(space, rows, direction)
    return OptimizerOutcome(
        direction=direction,
        moments=objective.moments(log_a),
        rows=rows,
        log_a=log_a,
        iterations=int(result.nit),
        method="slsqp",
    )
