"""Multi-core sharded simulation: a process-pool backend over the engine.

A single huge ensemble is memory- and core-bound: the vectorized engine
advances one lockstep batch on one core, and the per-step working arrays of
the 40 320-state repair model do not fit in cache once the batch grows.
:class:`ParallelBackend` shards a requested ensemble into fixed-size
sub-batches, runs the in-process engine (:class:`VectorizedBackend` where
the formula vectorizes) inside a persistent :class:`ProcessPoolExecutor`,
and merges the per-shard :class:`~repro.smc.engine.EnsembleResult` arrays
in shard order.

Design constraints, in order:

**Determinism.** Results must be invariant to the worker count and to the
scheduling order of shards. Sharding therefore depends only on the batch
size and ``shard_size`` — never on ``workers`` — and every shard derives
its own :class:`numpy.random.SeedSequence` child from the caller's
generator via ``SeedSequence.spawn``. Shard *k* produces the same traces
whether it runs first or last, in the parent or in any worker; merging in
shard order makes the whole batch reproducible. ``workers=1`` executes the
same shard/seed schedule in-process, so it is bitwise-identical to
``workers=64``.

**One-time shipping.** The chain and formula cross the process boundary
once, through the pool initializer: each worker rebuilds the
:class:`~repro.smc.engine.SimulationPlan` (recompiling monitors and CSR
arrays locally) and keeps the backend alive for the pool's lifetime. Task
submissions carry only ``(shard_size, seed)`` pairs — no per-task pickling
of model data. On Linux the pool forks, so even the one-time shipping is a
copy-on-write no-op.

**No fork tax on small jobs.** Batches that fit in a single shard run
in-process on the inner backend with the caller's generator directly — a
one-trace batch through :class:`ParallelBackend` is bitwise-identical to
the inner backend, and small jobs never pay pool-spawn latency.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.smc.engine import (
    EnsembleResult,
    SimulationBackend,
    SimulationPlan,
    make_plan,
    resolve_backend,
)
from repro.util.rng import spawn_seeds

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "ParallelBackend",
    "resolve_workers",
    "shard_sizes",
]

#: Traces per shard (and the in-process fallback threshold): large enough
#: that per-shard simulation dominates task dispatch and result pickling,
#: small enough that a handful of shards spread across any realistic pool.
DEFAULT_SHARD_SIZE = 8_192


def resolve_workers(workers: "int | str | None") -> int:
    """Turn a ``workers`` selector into a concrete process count.

    ``"auto"`` (and ``None``) resolve to :func:`os.cpu_count`; integers
    (or integer strings, as the CLI hands over) pass through validated.
    Inside a worker process ``"auto"`` resolves to 1: the parent already
    owns the machine's parallelism, and nesting pools would oversubscribe
    it quadratically. An explicit integer is always honoured.
    """
    if workers is None or workers == "auto":
        if multiprocessing.parent_process() is not None:
            return 1
        return os.cpu_count() or 1
    try:
        count = int(workers)
    except (TypeError, ValueError):
        raise EstimationError(
            f"workers must be 'auto' or a positive integer, got {workers!r}"
        ) from None
    if count < 1:
        raise EstimationError(f"workers must be positive, got {count}")
    return count


def shard_sizes(n_samples: int, shard_size: int) -> list[int]:
    """Split *n_samples* into deterministic shard sizes.

    Depends only on its arguments — never on the worker count — so the
    shard/seed schedule (and hence every simulated trace) is invariant to
    how many processes execute it.
    """
    if n_samples <= 0:
        raise EstimationError("n_samples must be positive")
    if shard_size <= 0:
        raise EstimationError("shard_size must be positive")
    full, remainder = divmod(n_samples, shard_size)
    sizes = [shard_size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


@dataclass(frozen=True)
class _PlanSpec:
    """The picklable ingredients of a :class:`SimulationPlan`.

    Workers rebuild the plan locally (recompiling monitors and CSR arrays)
    instead of receiving compiled closures, which do not cross process
    boundaries. Captures the *resolved* plan fields, so the rebuilt plan is
    identical to the parent's — including a futility mask that was derived
    once by graph analysis.
    """

    plan_args: tuple
    inner: str

    @classmethod
    def from_plan(cls, plan: SimulationPlan, inner: str) -> "_PlanSpec":
        return cls(
            plan_args=(
                plan.chain,
                plan.formula,
                plan.max_steps,
                plan.count_mode,
                plan.record_log_prob,
                plan.initial_state,
                plan.futility,
                plan.weight_chain,
                plan.weight_state_map,
            ),
            inner=inner,
        )

    def build_backend(self) -> SimulationBackend:
        (
            chain,
            formula,
            max_steps,
            count_mode,
            record_log_prob,
            initial,
            futility,
            weight_chain,
            weight_state_map,
        ) = self.plan_args
        plan = make_plan(
            chain,
            formula,
            max_steps=max_steps,
            count_mode=count_mode,
            record_log_prob=record_log_prob,
            initial_state=initial,
            futility=futility,
            weight_chain=weight_chain,
            weight_state_map=weight_state_map,
        )
        return resolve_backend(self.inner, plan)


#: Per-worker simulation backend, installed once by the pool initializer.
_WORKER_BACKEND: SimulationBackend | None = None

_METRIC_SHARDS = _obs_metrics.registry().counter(
    "repro_parallel_shards_total",
    "Simulation shards executed by pool workers.",
)
_METRIC_SHARD_SECONDS = _obs_metrics.registry().histogram(
    "repro_shard_seconds",
    "Wall time of one pool-worker shard (merged from the workers).",
)


def _init_worker(spec: _PlanSpec) -> None:
    global _WORKER_BACKEND
    _WORKER_BACKEND = spec.build_backend()


def _run_shard(
    n_traces: int, seed: np.random.SeedSequence
) -> "tuple[EnsembleResult, dict]":
    """Execute one shard and report its metric activity alongside it.

    The worker's process-local registry accumulates across every shard
    the persistent pool hands it, so each shard snapshots before and
    after and ships only the delta — the parent merges it, which is how
    engine counters (and any store activity a repetition performs) keep
    counting across the process boundary.
    """
    backend = _WORKER_BACKEND
    assert backend is not None, "worker pool used before initialization"
    registry = _obs_metrics.registry()
    before = registry.snapshot()
    started = time.perf_counter()
    result = backend.run_ensemble(n_traces, np.random.default_rng(seed))
    _METRIC_SHARD_SECONDS.observe(time.perf_counter() - started)
    _METRIC_SHARDS.inc()
    return result, _obs_metrics.snapshot_delta(before, registry.snapshot())


class ParallelBackend(SimulationBackend):
    """Shard an ensemble across a persistent process pool.

    Parameters
    ----------
    plan:
        The sampling plan, shared with the in-process engines.
    workers:
        Pool size: ``"auto"`` (default) resolves to the CPU count. The
        worker count never affects results — only wall-clock time.
    shard_size:
        Traces per shard, and the in-process threshold: batches of at most
        one shard run on the inner backend with the caller's generator
        (bitwise the inner backend's results, no pool involved).
    inner:
        Backend selector executed per shard (``"auto"`` picks the kernel
        tier whenever the monitor exposes a mask spec, with the usual
        vectorized/sequential fallbacks — kernel-inside-shard composes).
    """

    name = "parallel"

    def __init__(
        self,
        plan: SimulationPlan,
        workers: "int | str | None" = "auto",
        shard_size: int = DEFAULT_SHARD_SIZE,
        inner: str = "auto",
    ):
        if shard_size <= 0:
            raise EstimationError("shard_size must be positive")
        if not isinstance(inner, str) or inner == "parallel":
            raise EstimationError("inner must name an in-process backend")
        self._plan = plan
        self._workers = resolve_workers(workers)
        self._shard_size = int(shard_size)
        self._inner = resolve_backend(inner, plan)
        self._spec = _PlanSpec.from_plan(plan, inner)
        self._pool: Executor | None = None

    @property
    def plan(self) -> SimulationPlan:
        return self._plan

    @property
    def workers(self) -> int:
        """Resolved pool size."""
        return self._workers

    @property
    def shard_size(self) -> int:
        """Traces per shard (also the in-process threshold)."""
        return self._shard_size

    @property
    def inner(self) -> SimulationBackend:
        """The in-process backend executing single-shard batches."""
        return self._inner

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_init_worker,
                initargs=(self._spec,),
            )
        return self._pool

    def run_ensemble(self, n_samples: int, rng: np.random.Generator) -> EnsembleResult:
        if n_samples <= 0:
            raise EstimationError("n_samples must be positive")
        if n_samples <= self._shard_size:
            # Below the sharding threshold: no pool, no spawn — the
            # caller's generator drives the inner backend directly.
            return self._inner.run_ensemble(n_samples, rng)
        sizes = shard_sizes(n_samples, self._shard_size)
        seeds = spawn_seeds(rng, len(sizes))
        with _obs_trace.span(
            "parallel-shards",
            shards=len(sizes),
            workers=self._workers,
            traces=n_samples,
        ):
            if self._workers == 1:
                # Same shard/seed schedule, executed in-process: results stay
                # invariant to the worker count.
                chunks = [
                    self._inner.run_ensemble(n, np.random.default_rng(seed))
                    for n, seed in zip(sizes, seeds)
                ]
            else:
                pool = self._ensure_pool()
                futures = [
                    pool.submit(_run_shard, n, seed) for n, seed in zip(sizes, seeds)
                ]
                try:
                    shards = [f.result() for f in futures]
                except BaseException:
                    # Aborted (a shard failed, or SIGINT raised
                    # KeyboardInterrupt in the caller): cancel every shard not
                    # yet started and shut the pool down so no worker outlives
                    # the interrupted batch.
                    self.close(cancel_futures=True)
                    raise
                registry = _obs_metrics.registry()
                for _, delta in shards:
                    registry.merge(delta)
                chunks = [result for result, _ in shards]
        return EnsembleResult.concatenate(chunks)

    def close(self, cancel_futures: bool = False) -> None:
        """Shut the worker pool down (idempotent).

        Parameters
        ----------
        cancel_futures : bool, optional
            Also cancel shards that have not started yet (the graceful
            SIGINT/SIGTERM path); in-flight shards still run to
            completion before the workers exit.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=cancel_futures)

    def __enter__(self) -> "ParallelBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter teardown: the pool dies with the process
