"""Trace sampling engine (Algorithm 1, lines 1–15).

:class:`TraceSampler` draws independent traces of a chain, decides a property
on the fly with a monitor, and optionally accumulates the per-trace
transition-count tables ``(T_k, n_k)`` and the log-probability of the trace
under the sampling distribution (the likelihood-ratio denominator when the
sampling chain is an importance-sampling proposal).

Rows of the sampling chain are compiled lazily into cumulative-probability
arrays: sampling a step is one uniform draw plus a binary search, and only
the states actually visited are ever compiled — essential on the
40 320-state repair benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.paths import TransitionCounts
from repro.errors import EstimationError, ModelError
from repro.properties.logic import Formula
from repro.properties.monitor import Verdict
from repro.smc.futility import FutilityMask, futility_for_formula
from repro.smc.results import BatchSummary, TraceRecord

#: Safety cap on trace length for properties without a step bound.
DEFAULT_MAX_STEPS = 1_000_000

#: What to keep count tables for: successful traces (Algorithm 1), all, none.
COUNT_MODES = ("satisfied", "all", "none")


@dataclass
class _CompiledRow:
    indices: np.ndarray
    cumulative: np.ndarray
    log_probs: np.ndarray


class CompiledChain:
    """Per-state sampling structures for a DTMC, built lazily."""

    def __init__(self, chain: DTMC):
        self._chain = chain
        self._rows: dict[int, _CompiledRow] = {}

    @property
    def chain(self) -> DTMC:
        """The underlying DTMC."""
        return self._chain

    def row(self, state: int) -> _CompiledRow:
        """Compiled row of *state* (cached)."""
        compiled = self._rows.get(state)
        if compiled is None:
            indices, probs = self._chain.row_entries(state)
            if indices.size == 0:
                raise ModelError(f"state {state} has no outgoing transitions")
            cumulative = np.cumsum(probs)
            # Guard against rounding: force the last cumulative weight to 1.
            cumulative[-1] = 1.0
            compiled = _CompiledRow(indices, cumulative, np.log(probs))
            self._rows[state] = compiled
        return compiled

    def step(self, state: int, rng: np.random.Generator) -> tuple[int, float]:
        """Sample a successor; returns ``(next_state, log_prob_of_step)``."""
        row = self.row(state)
        pos = int(np.searchsorted(row.cumulative, rng.random(), side="right"))
        pos = min(pos, row.indices.size - 1)
        return int(row.indices[pos]), float(row.log_probs[pos])


class TraceSampler:
    """Samples traces of *chain* and decides *formula* on the fly.

    Parameters
    ----------
    chain:
        The DTMC to simulate (the model itself for crude Monte Carlo, or an
        importance-sampling proposal).
    formula:
        The property to decide per trace.
    max_steps:
        Cap on the number of transitions; defaults to the formula's horizon
        when bounded, :data:`DEFAULT_MAX_STEPS` otherwise. Traces undecided
        at the cap count as not satisfying and are tallied separately.
    count_mode:
        Which traces get a :class:`TransitionCounts` table: ``"satisfied"``
        (Algorithm 1's choice), ``"all"`` (needed for model learning), or
        ``"none"``.
    record_log_prob:
        Record the log-probability of each trace under *chain* (needed when
        *chain* is an IS proposal).
    initial_state:
        Override of the chain's initial state.
    futility:
        ``"auto"`` (default) derives a :class:`FutilityMask` by graph
        analysis so that traces that can no longer satisfy the property are
        cut immediately with verdict FALSE — without it, an unbounded
        ``F "goal"`` trace absorbed in a failure state would run to the
        step cap. Pass ``None`` to disable, or a precomputed mask.
    """

    def __init__(
        self,
        chain: DTMC,
        formula: Formula,
        max_steps: int | None = None,
        count_mode: str = "satisfied",
        record_log_prob: bool = False,
        initial_state: int | None = None,
        futility: "FutilityMask | str | None" = "auto",
    ):
        if count_mode not in COUNT_MODES:
            raise EstimationError(f"count_mode must be one of {COUNT_MODES}")
        self._compiled = CompiledChain(chain)
        self._monitor_factory = formula.compile(chain)
        if futility == "auto":
            self._futility = futility_for_formula(chain, formula)
        elif futility is None or isinstance(futility, FutilityMask):
            self._futility = futility
        else:
            raise EstimationError("futility must be 'auto', None, or a FutilityMask")
        horizon = formula.horizon()
        if max_steps is None:
            max_steps = horizon if horizon is not None else DEFAULT_MAX_STEPS
        if max_steps < 0:
            raise EstimationError("max_steps must be non-negative")
        self._max_steps = int(max_steps)
        self._count_mode = count_mode
        self._record_log_prob = record_log_prob
        self._initial_state = (
            chain.initial_state if initial_state is None else int(initial_state)
        )
        if not 0 <= self._initial_state < chain.n_states:
            raise EstimationError(f"initial state {initial_state} out of range")

    @property
    def chain(self) -> DTMC:
        """The chain being simulated."""
        return self._compiled.chain

    @property
    def max_steps(self) -> int:
        """The trace-length cap."""
        return self._max_steps

    def sample(self, rng: np.random.Generator) -> TraceRecord:
        """Sample one trace; returns its :class:`TraceRecord`."""
        monitor = self._monitor_factory()
        state = self._initial_state
        verdict = monitor.update(state)
        if (
            not verdict.decided
            and self._futility is not None
            and self._futility.applies(state, 0)
        ):
            verdict = Verdict.FALSE
        keep_counts = self._count_mode != "none"
        counts = TransitionCounts() if keep_counts else None
        log_prob = 0.0
        steps = 0
        while not verdict.decided and steps < self._max_steps:
            next_state, step_log_prob = self._compiled.step(state, rng)
            if counts is not None:
                counts.record(state, next_state)
            if self._record_log_prob:
                log_prob += step_log_prob
            state = next_state
            steps += 1
            verdict = monitor.update(state)
            if (
                not verdict.decided
                and self._futility is not None
                and self._futility.applies(state, steps)
            ):
                verdict = Verdict.FALSE
        satisfied = verdict is Verdict.TRUE
        if self._count_mode == "satisfied" and not satisfied:
            counts = None
        return TraceRecord(
            satisfied=satisfied,
            length=steps,
            counts=counts,
            log_proposal=log_prob,
            decided=verdict.decided,
        )

    def sample_batch(self, n_samples: int, rng: np.random.Generator) -> BatchSummary:
        """Sample *n_samples* traces and aggregate them."""
        if n_samples <= 0:
            raise EstimationError("n_samples must be positive")
        summary = BatchSummary()
        for _ in range(n_samples):
            record = self.sample(rng)
            summary.n_samples += 1
            summary.n_satisfied += int(record.satisfied)
            summary.n_undecided += int(not record.decided)
            summary.total_length += record.length
            summary.records.append(record)
        return summary

    def log_probability_of_counts(self, counts: TransitionCounts) -> float:
        """Log-probability of a count table under the sampled chain."""
        total = 0.0
        for (i, j), n in counts.items():
            p = self.chain.probability(i, j)
            if p == 0.0:
                return float("-inf")
            total += n * math.log(p)
        return total
