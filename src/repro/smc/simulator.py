"""Trace sampling facade (Algorithm 1, lines 1–15).

:class:`TraceSampler` draws independent traces of a chain, decides a property
on the fly, and optionally accumulates the per-trace transition-count tables
``(T_k, n_k)`` and the log-probability of the trace under the sampling
distribution (the likelihood-ratio denominator when the sampling chain is an
importance-sampling proposal).

Since the batch-engine refactor the sampler itself holds no simulation
logic: it builds a :class:`~repro.smc.engine.SimulationPlan` once and
delegates to a pluggable :class:`~repro.smc.engine.SimulationBackend` —
the lockstep-ensemble :class:`~repro.smc.engine.VectorizedBackend` whenever
the property compiles to masks, the scalar
:class:`~repro.smc.engine.SequentialBackend` otherwise (or on request).
Single-trace :meth:`TraceSampler.sample` always runs the sequential
reference path; bulk work should go through :meth:`TraceSampler.sample_batch`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.paths import TransitionCounts
from repro.errors import EstimationError
from repro.properties.logic import Formula
from repro.smc.engine import (
    COUNT_MODES,
    DEFAULT_MAX_STEPS,
    CompiledChain,
    CompiledCSR,
    EnsembleResult,
    SequentialBackend,
    SimulationBackend,
    VectorizedBackend,
    make_plan,
    resolve_backend,
)
from repro.smc.futility import FutilityMask
from repro.smc.results import BatchSummary, TraceRecord

__all__ = [
    "COUNT_MODES",
    "DEFAULT_MAX_STEPS",
    "CompiledChain",
    "CompiledCSR",
    "EnsembleResult",
    "SequentialBackend",
    "SimulationBackend",
    "TraceSampler",
    "VectorizedBackend",
]


class TraceSampler:
    """Samples traces of *chain* and decides *formula* on the fly.

    Parameters
    ----------
    chain:
        The DTMC to simulate (the model itself for crude Monte Carlo, or an
        importance-sampling proposal).
    formula:
        The property to decide per trace.
    max_steps:
        Cap on the number of transitions; defaults to the formula's horizon
        when bounded, :data:`~repro.smc.engine.DEFAULT_MAX_STEPS` otherwise.
        Traces undecided at the cap count as not satisfying and are tallied
        separately.
    count_mode:
        Which traces get a :class:`TransitionCounts` table: ``"satisfied"``
        (Algorithm 1's choice), ``"all"`` (needed for model learning), or
        ``"none"``.
    record_log_prob:
        Record the log-probability of each trace under *chain* (needed when
        *chain* is an IS proposal).
    initial_state:
        Override of the chain's initial state.
    futility:
        ``"auto"`` (default) derives a :class:`FutilityMask` by graph
        analysis so that traces that can no longer satisfy the property are
        cut immediately with verdict FALSE — without it, an unbounded
        ``F "goal"`` trace absorbed in a failure state would run to the
        step cap. Pass ``None`` to disable, or a precomputed mask.
    backend:
        ``"auto"`` (default) batch-simulates through the compiled kernel
        tier when the monitor exposes a mask spec, the lockstep vectorized
        engine when the formula merely compiles to masks, and the scalar
        loop otherwise; ``"kernel"`` and ``"vectorized"`` request those
        tiers explicitly (same fallbacks); ``"sequential"`` forces the
        reference loop; ``"parallel"`` shards batches across a process
        pool. A :class:`SimulationBackend` instance is used as-is.
    workers:
        When not ``None``, shard batches across this many worker processes
        (``"auto"`` = CPU count) through
        :class:`~repro.smc.parallel.ParallelBackend`, executing *backend*
        inside each worker. Any value — including 1 — selects the same
        sharded seed schedule, so results are invariant to the worker
        count and to the machine's CPU count; batches above one shard
        therefore consume a different (equally deterministic) stream
        layout than the unsharded backends. Leave it ``None`` for the
        plain backend's reference stream. Single-shard batches always run
        in-process on *backend* directly, bitwise-identically to
        ``workers=None``.
    weight_chain:
        When given, lockstep backends additionally accumulate each
        trace's log probability under this chain — the fused IS numerator
        — into :attr:`EnsembleResult.log_numerators` (see
        :attr:`fuses_weights`).
    weight_state_map:
        Optional projection of simulated states onto *weight_chain*
        states applied before the numerator lookup (the unrolled
        time-dependent proposal maps ``t·n + s`` back to ``s``).
    """

    def __init__(
        self,
        chain: DTMC,
        formula: Formula,
        max_steps: int | None = None,
        count_mode: str = "satisfied",
        record_log_prob: bool = False,
        initial_state: int | None = None,
        futility: "FutilityMask | str | None" = "auto",
        backend: "str | SimulationBackend | None" = "auto",
        workers: "int | str | None" = None,
        weight_chain: "DTMC | None" = None,
        weight_state_map: "np.ndarray | None" = None,
    ):
        self._plan = make_plan(
            chain,
            formula,
            max_steps=max_steps,
            count_mode=count_mode,
            record_log_prob=record_log_prob,
            initial_state=initial_state,
            futility=futility,
            weight_chain=weight_chain,
            weight_state_map=weight_state_map,
        )
        if workers is not None and not isinstance(backend, SimulationBackend):
            from repro.smc.parallel import ParallelBackend

            inner = "auto" if backend in (None, "parallel") else backend
            self._backend: SimulationBackend = ParallelBackend(
                self._plan, workers=workers, inner=inner
            )
        else:
            self._backend = resolve_backend(backend, self._plan)
        if isinstance(self._backend, SequentialBackend):
            self._sequential = self._backend
        else:
            self._sequential = SequentialBackend(self._plan)

    @property
    def chain(self) -> DTMC:
        """The chain being simulated."""
        return self._plan.chain

    @property
    def max_steps(self) -> int:
        """The trace-length cap."""
        return self._plan.max_steps

    @property
    def backend(self) -> SimulationBackend:
        """The backend executing :meth:`sample_batch`."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Short identifier of the active batch backend."""
        return self._backend.name

    @property
    def fuses_weights(self) -> bool:
        """Whether batches carry fused IS numerators.

        True when the plan holds a ``weight_chain`` and the effective
        in-process engine is a lockstep backend (kernel or vectorized —
        also inside parallel shards): those accumulate
        :attr:`~repro.smc.engine.EnsembleResult.log_numerators` during
        simulation. The sequential reference loop does not fuse; callers
        needing weights there must keep count tables instead.
        """
        if self._plan.weight_chain is None:
            return False
        backend = self._backend
        inner = getattr(backend, "inner", None)
        if inner is not None:
            backend = inner
        return backend.name in ("kernel", "vectorized")

    def sample(self, rng: np.random.Generator) -> TraceRecord:
        """Sample one trace through the sequential reference path."""
        return self._sequential.sample_one(rng)

    def sample_batch(self, n_samples: int, rng: np.random.Generator) -> BatchSummary:
        """Sample *n_samples* traces through the active backend.

        Returns the classic per-record summary; bulk consumers that only
        need aggregate arrays should prefer :meth:`sample_ensemble`, which
        skips materializing one :class:`TraceRecord` per trace.
        """
        if n_samples <= 0:
            raise EstimationError("n_samples must be positive")
        return self._backend.run(n_samples, rng)

    def sample_ensemble(self, n_samples: int, rng: np.random.Generator) -> EnsembleResult:
        """Sample *n_samples* traces into flat per-trace arrays (fast path)."""
        if n_samples <= 0:
            raise EstimationError("n_samples must be positive")
        return self._backend.run_ensemble(n_samples, rng)

    def log_probability_of_counts(self, counts: TransitionCounts) -> float:
        """Log-probability of a count table under the sampled chain."""
        total = 0.0
        for (i, j), n in counts.items():
            p = self.chain.probability(i, j)
            if p == 0.0:
                return float("-inf")
            total += n * math.log(p)
        return total
