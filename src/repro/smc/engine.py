"""Batch simulation engine: pluggable backends behind one sampling plan.

This module is the simulation core of the library. Every estimator —
crude Monte Carlo, the importance-sampling estimator of Equation (7), the
sequential tests, and IMCIS (Algorithm 1) — needs the same primitive:
*draw N independent traces of a chain, decide a property per trace, and
optionally keep per-trace transition-count tables and log-proposal
probabilities*. That primitive is expressed here once, as a
:class:`SimulationPlan`, and executed by interchangeable backends:

:class:`SequentialBackend`
    The reference semantics: one Python loop per trace, one transition per
    step, scalar monitors, lazily compiled rows (:class:`CompiledChain`).
    Always available, for every formula.

:class:`VectorizedBackend`
    Compiles the whole chain upfront into flat CSR arrays
    (:class:`CompiledCSR`) and advances an *ensemble* of traces in
    lockstep: one vectorized per-row binary search per step moves every
    live trace at once, log-proposal probabilities accumulate by flat
    gathers, and transition counts are aggregated afterwards from flat
    ``source * n_states + target`` keys. Properties are decided by the
    mask-based :class:`~repro.properties.monitor.VectorMonitor` path;
    formulas outside that fragment fall back to the sequential backend
    (see :func:`resolve_backend`).

:class:`KernelBackend`
    The compiled tier: the same lockstep loop with every per-step
    operation routed through :mod:`repro.smc.kernels` (``@njit`` when
    numba is installed, bitwise-matching NumPy fallbacks otherwise),
    array-native count tables, and optional *fused* importance-weight
    accumulation straight off the step keys. The default under
    ``"auto"`` whenever the monitor exposes a mask spec.

Consumers go through :class:`repro.smc.simulator.TraceSampler`, which is a
thin facade building the plan and delegating batches to the chosen
backend. Both backends produce identical
:class:`~repro.smc.results.BatchSummary` structures, so everything
downstream (estimators, observation tables, the optimiser) is
backend-agnostic.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from collections.abc import Callable, Iterator

import numpy as np

from repro.core.dtmc import DTMC, ROW_ATOL
from repro.core.paths import TransitionCounts
from repro.errors import EstimationError, ModelError
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.properties import monitor as mon
from repro.properties.logic import Formula
from repro.smc import kernels as _kernels
from repro.smc.futility import FutilityMask, futility_for_formula
from repro.smc.kernels import TraceCounts, entry_weight_logs
from repro.smc.results import BatchSummary, TraceRecord

#: Safety cap on trace length for properties without a step bound.
DEFAULT_MAX_STEPS = 1_000_000

#: What to keep count tables for: successful traces (Algorithm 1), all, none.
COUNT_MODES = ("satisfied", "all", "none")

#: Recognised backend selectors.
BACKEND_NAMES = ("auto", "sequential", "vectorized", "kernel", "parallel")

#: Absolute tolerance for row-stochasticity during compilation. A row
#: whose probabilities sum farther than this from one is genuinely
#: unnormalized and raises :class:`~repro.errors.ModelError` instead of
#: being silently rescaled. Shares :data:`repro.core.dtmc.ROW_ATOL` so
#: construction-time validation and compilation can never disagree.
ROW_SUM_ATOL = ROW_ATOL

#: Default cap on the number of traces advanced in one lockstep ensemble;
#: larger batches are split so per-step working arrays stay cache-friendly.
#: Note this bounds the trace axis only — transition-key recording for
#: count tables additionally grows with trace length and is pruned every
#: :data:`COMPACT_INTERVAL` steps.
DEFAULT_MAX_ENSEMBLE = 65_536

#: Steps between compactions of the recorded transition keys: keys of
#: traces that already failed (whose tables are discarded under
#: ``count_mode="satisfied"``) are dropped so memory tracks the keys of
#: eventually-useful traces plus one window, not traces × steps.
COMPACT_INTERVAL = 256


# Engine metrics, always on at batch granularity (a handful of counter
# adds per ensemble — invisible next to the simulation itself). Per-step
# futility-cut counting is the one detail too hot to afford by default:
# it is gated on tracing being enabled (see ``_count_cuts``).
_METRIC_TRACES = _obs_metrics.registry().counter(
    "repro_traces_simulated_total",
    "Traces simulated, by backend.",
    ("backend",),
)
_METRIC_STEPS = _obs_metrics.registry().counter(
    "repro_trace_steps_total",
    "Simulated trace-steps, by backend.",
    ("backend",),
)
_METRIC_SATISFIED = _obs_metrics.registry().counter(
    "repro_traces_satisfied_total",
    "Simulated traces that satisfied the property, by backend.",
    ("backend",),
)
_METRIC_CUTS = _obs_metrics.registry().counter(
    "repro_futility_cuts_total",
    "Traces cut early by the futility mask, by backend (the array "
    "backends run the per-step census only while tracing is enabled).",
    ("backend",),
)
_METRIC_BATCH_SECONDS = _obs_metrics.registry().histogram(
    "repro_simulate_seconds",
    "Wall time of one run_ensemble call, by backend.",
    ("backend",),
)

#: The kernel tier bound at import, annotated on kernel-backend spans.
_KERNEL_TIER = str(_kernels.kernel_runtime_info()["tier"])

_ENSEMBLE_CELLS: "dict[str, tuple]" = {}


def _ensemble_cells(backend: str) -> tuple:
    cells = _ENSEMBLE_CELLS.get(backend)
    if cells is None:
        cells = _ENSEMBLE_CELLS[backend] = (
            _METRIC_TRACES.labels(backend=backend),
            _METRIC_STEPS.labels(backend=backend),
            _METRIC_SATISFIED.labels(backend=backend),
            _METRIC_CUTS.labels(backend=backend),
            _METRIC_BATCH_SECONDS.labels(backend=backend),
        )
    return cells


def _record_ensemble(
    backend: str, result: "EnsembleResult", seconds: float, cuts: int
) -> None:
    """Fold one finished ensemble into the engine metrics."""
    traces, steps, satisfied, cut_cell, batch_seconds = _ensemble_cells(backend)
    traces.inc(result.n_samples)
    steps.inc(int(result.lengths.sum()))
    satisfied.inc(int(np.count_nonzero(result.satisfied)))
    if cuts:
        cut_cell.inc(cuts)
    batch_seconds.observe(seconds)


def _count_cuts() -> bool:
    """Whether the per-step futility-cut census is affordable right now."""
    return _obs_trace.enabled()


def _check_row_sum(total: float, state: int, atol: float = ROW_SUM_ATOL) -> None:
    """Raise :class:`ModelError` when a row's probability mass is off."""
    if abs(total - 1.0) > atol:
        raise ModelError(
            f"row {state} of the transition matrix sums to {total!r}, "
            "expected 1 — refusing to renormalise a genuinely "
            "unnormalized distribution"
        )


@dataclass
class _CompiledRow:
    indices: np.ndarray
    cumulative: np.ndarray
    log_probs: np.ndarray


class CompiledChain:
    """Per-state sampling structures for a DTMC, built lazily.

    Used by the sequential backend: only the states actually visited are
    ever compiled — essential when a handful of traces touch a corner of
    the 40 320-state repair benchmark.
    """

    def __init__(self, chain: DTMC):
        self._chain = chain
        self._rows: dict[int, _CompiledRow] = {}

    @property
    def chain(self) -> DTMC:
        """The underlying DTMC."""
        return self._chain

    def row(self, state: int) -> _CompiledRow:
        """Compiled row of *state* (cached)."""
        compiled = self._rows.get(state)
        if compiled is None:
            indices, probs = self._chain.row_entries(state)
            if indices.size == 0:
                raise ModelError(f"state {state} has no outgoing transitions")
            _check_row_sum(float(probs.sum()), state)
            cumulative = np.cumsum(probs)
            # The sum was just validated; pinning the last cumulative
            # weight to 1 only absorbs accumulation rounding.
            cumulative[-1] = 1.0
            compiled = _CompiledRow(indices, cumulative, np.log(probs))
            self._rows[state] = compiled
        return compiled

    def step(self, state: int, rng: np.random.Generator) -> tuple[int, float]:
        """Sample a successor; returns ``(next_state, log_prob_of_step)``."""
        row = self.row(state)
        pos = int(np.searchsorted(row.cumulative, rng.random(), side="right"))
        pos = min(pos, row.indices.size - 1)
        return int(row.indices[pos]), float(row.log_probs[pos])


class CompiledCSR:
    """Whole-chain flat CSR arrays for lockstep ensemble sampling.

    The chain is compiled once, upfront, into four aligned arrays —
    ``indptr`` (row pointers), ``indices`` (successor states), ``cumprobs``
    (within-row cumulative probabilities) and ``logprobs``. A batch of
    transition draws is resolved by :meth:`gather_step`'s vectorized
    per-row binary search over ``cumprobs`` — every live trace advances in
    ``O(log max_degree)`` fully-array operations, and because the search
    compares raw within-row cumulative probabilities it is *exact*: the
    same float comparisons the scalar backend's per-row ``searchsorted``
    performs, with no precision lost to row-offset encodings.

    Zero-probability entries (explicit zeros in sparse matrices) are
    dropped during compilation, and every row's probability mass is
    validated against :data:`ROW_SUM_ATOL` — an unnormalized row raises
    :class:`~repro.errors.ModelError` instead of being silently rescaled.
    """

    __slots__ = ("n_states", "indptr", "indices", "cumprobs", "logprobs")

    def __init__(
        self,
        n_states: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        cumprobs: np.ndarray,
        logprobs: np.ndarray,
    ):
        self.n_states = n_states
        self.indptr = indptr
        self.indices = indices
        self.cumprobs = cumprobs
        self.logprobs = logprobs

    @classmethod
    def from_chain(cls, chain: DTMC, atol: float = ROW_SUM_ATOL) -> "CompiledCSR":
        """Compile *chain* (dense or sparse) into flat CSR arrays."""
        n = chain.n_states
        matrix = chain.transitions
        if chain.is_sparse:
            csr = matrix.tocsr()
            row_of = np.repeat(np.arange(n), np.diff(csr.indptr))
            cols = np.asarray(csr.indices, dtype=np.int64)
            data = np.asarray(csr.data, dtype=np.float64)
            keep = data > 0.0
            if not keep.all():
                row_of, cols, data = row_of[keep], cols[keep], data[keep]
        else:
            dense = np.asarray(matrix, dtype=np.float64)
            # Strictly-positive mask (not nonzero): negative entries must
            # not survive into the cumulative arrays — dropping them makes
            # the row-sum check below flag the corrupt row.
            rows_idx, cols = np.nonzero(dense > 0.0)
            row_of = rows_idx.astype(np.int64)
            cols = cols.astype(np.int64)
            data = dense[rows_idx, cols]

        per_row = np.bincount(row_of, minlength=n)
        empty = np.flatnonzero(per_row == 0)
        if empty.size:
            raise ModelError(f"state {int(empty[0])} has no outgoing transitions")
        sums = np.bincount(row_of, weights=data, minlength=n)
        bad = np.flatnonzero(np.abs(sums - 1.0) > atol)
        if bad.size:
            _check_row_sum(float(sums[bad[0]]), int(bad[0]), atol)

        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(per_row, out=indptr[1:])
        # Within-row cumulative sums, grouped by row degree so each group
        # is one 2-D cumsum. Never via a global cumsum minus row-start
        # offsets: the running total reaches ~n and subtracting it
        # quantizes tiny within-row probabilities to ~n * 2^-52 — enough
        # to erase rare transitions on large chains.
        cumprobs = np.empty_like(data)
        for degree in np.unique(per_row):
            rows_d = np.flatnonzero(per_row == degree)
            entry_idx = indptr[rows_d][:, None] + np.arange(degree)
            cumprobs[entry_idx] = np.cumsum(data[entry_idx], axis=1)
        # Validated above; pinning the row tails to 1 absorbs rounding only.
        cumprobs[indptr[1:] - 1] = 1.0
        logprobs = np.log(data)
        return cls(n, indptr, cols, cumprobs, logprobs)

    def gather_step(
        self, states: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance every trace in *states* by one transition.

        Returns ``(positions, next_states)`` where *positions* index the
        flat entry arrays (for log-probability gathers). The successor of
        each trace is the first entry of its row with cumulative
        probability exceeding the trace's uniform draw — found by a
        vectorized binary search bounded per trace by its row slice, so
        the comparison is against the raw within-row cumulative (bitwise
        the scalar backend's criterion, robust to arbitrarily small
        transition probabilities in any row).

        Consumes exactly one uniform draw per trace per step, in trace
        order within the step. Note the consumption order is time-major,
        while the sequential backend's is trace-major — given the same
        seed the two backends realise identical traces only for one-trace
        batches (larger batches agree statistically, not bitwise).
        """
        u = rng.random(states.shape[0])
        lo = self.indptr[states]
        hi = self.indptr[states + 1]
        last = hi - 1
        searching = lo < last  # single-successor rows resolve immediately
        while searching.any():
            mid = (lo + hi) >> 1
            go_right = searching & (self.cumprobs[np.minimum(mid, last)] <= u)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(searching & ~go_right, mid, hi)
            searching = lo < hi
        # The row tail is pinned to cumulative 1.0 > u, so lo stays inside
        # the row; the minimum() above is only an idle-lane gather guard.
        pos = np.minimum(lo, last)
        return pos, self.indices[pos]


@dataclass(frozen=True)
class SimulationPlan:
    """Everything a backend needs to simulate one (chain, formula) workload.

    Built once by :func:`make_plan` (or the :class:`TraceSampler` facade)
    and shared by backends: the chain, the scalar monitor factory, the
    optional vector monitor, the futility mask, the step cap and the
    bookkeeping switches.

    ``weight_chain`` (with the optional ``weight_state_map`` projection)
    requests *fused importance weights*: backends that support it
    accumulate each trace's log probability under that chain — the IS
    numerator ``Σ n_ij log a_ij`` — inside the simulation loop and return
    it as :attr:`EnsembleResult.log_numerators`, skipping the per-trace
    Python table walk entirely.
    """

    chain: DTMC
    formula: Formula
    monitor_factory: Callable[[], mon.Monitor]
    vector_monitor: "mon.VectorMonitor | None"
    futility: FutilityMask | None
    max_steps: int
    count_mode: str
    record_log_prob: bool
    initial_state: int
    weight_chain: DTMC | None = None
    weight_state_map: np.ndarray | None = None


def make_plan(
    chain: DTMC,
    formula: Formula,
    max_steps: int | None = None,
    count_mode: str = "satisfied",
    record_log_prob: bool = False,
    initial_state: int | None = None,
    futility: "FutilityMask | str | None" = "auto",
    weight_chain: DTMC | None = None,
    weight_state_map: "np.ndarray | None" = None,
) -> SimulationPlan:
    """Validate the arguments and precompile a :class:`SimulationPlan`.

    Parameters
    ----------
    chain : DTMC
        The chain to simulate.
    formula : Formula
        The property each trace is decided against.
    max_steps : int, optional
        Trace-length cap; defaults to the formula's own horizon when it
        has one, else :data:`DEFAULT_MAX_STEPS`.
    count_mode : {"satisfied", "all", "none"}, optional
        Which traces keep per-trace transition-count tables.
    record_log_prob : bool, optional
        Accumulate each trace's log probability under the sampled chain
        (the IS likelihood-ratio denominator).
    initial_state : int, optional
        Start state override; defaults to the chain's own.
    futility : FutilityMask, "auto" or None, optional
        Early-abort mask for hopeless traces; ``"auto"`` derives one
        from the formula.
    weight_chain : DTMC, optional
        Accumulate each trace's log probability under this chain too
        (the IS numerator), fused into the simulation loop on backends
        that support it.
    weight_state_map : ndarray, optional
        Project simulated states onto *weight_chain* states before the
        numerator lookup (used by the unrolled time-dependent proposal,
        which maps ``t·n + s`` back to ``s``). Length must equal the
        simulated chain's state count.

    Returns
    -------
    SimulationPlan
        The immutable plan every backend executes.

    Raises
    ------
    EstimationError
        On an unknown *count_mode*, a negative *max_steps* or an
        out-of-range *initial_state*.
    """
    if count_mode not in COUNT_MODES:
        raise EstimationError(f"count_mode must be one of {COUNT_MODES}")
    if futility == "auto":
        fut = futility_for_formula(chain, formula)
    elif futility is None or isinstance(futility, FutilityMask):
        fut = futility
    else:
        raise EstimationError("futility must be 'auto', None, or a FutilityMask")
    horizon = formula.horizon()
    if max_steps is None:
        max_steps = horizon if horizon is not None else DEFAULT_MAX_STEPS
    if max_steps < 0:
        raise EstimationError("max_steps must be non-negative")
    start = chain.initial_state if initial_state is None else int(initial_state)
    if not 0 <= start < chain.n_states:
        raise EstimationError(f"initial state {initial_state} out of range")
    if weight_state_map is not None:
        if weight_chain is None:
            raise EstimationError("weight_state_map requires a weight_chain")
        weight_state_map = np.asarray(weight_state_map, dtype=np.int64)
        if weight_state_map.shape != (chain.n_states,):
            raise EstimationError(
                "weight_state_map must hold one weight-chain state per "
                f"simulated state ({chain.n_states}), got shape "
                f"{weight_state_map.shape}"
            )
    return SimulationPlan(
        chain=chain,
        formula=formula,
        monitor_factory=formula.compile(chain),
        vector_monitor=formula.vector_monitor(chain),
        futility=fut,
        max_steps=int(max_steps),
        count_mode=count_mode,
        record_log_prob=record_log_prob,
        initial_state=start,
        weight_chain=weight_chain,
        weight_state_map=weight_state_map,
    )


@dataclass
class EnsembleResult:
    """Array-level outcome of a batch of traces — the engine's fast path.

    Per-trace results live in flat NumPy arrays instead of per-trace
    Python objects, so a ten-thousand-trace batch costs a handful of array
    reductions rather than ten thousand allocations. ``count_tables`` is
    ``None`` when counting was off, otherwise a list aligned with the
    trace axis holding a :class:`TransitionCounts` per kept trace (``None``
    for dropped ones, mirroring ``count_mode="satisfied"``).

    The kernel backend keeps counts array-native instead:
    ``count_arrays`` holds the same information as flat COO arrays
    (:class:`~repro.smc.kernels.TraceCounts`); :meth:`tables` materializes
    classic dict tables from either representation on demand. When the
    plan carried a ``weight_chain``, ``log_numerators`` holds each trace's
    fused log probability under it (the IS numerator).

    :meth:`to_summary` materializes the classic per-record
    :class:`~repro.smc.results.BatchSummary` for consumers that want
    :class:`~repro.smc.results.TraceRecord` objects.
    """

    satisfied: np.ndarray
    decided: np.ndarray
    lengths: np.ndarray
    log_proposals: np.ndarray | None = None
    count_tables: "list[TransitionCounts | None] | None" = None
    log_numerators: np.ndarray | None = None
    count_arrays: "TraceCounts | None" = None

    @property
    def n_samples(self) -> int:
        """Number of traces in the batch."""
        return int(self.satisfied.shape[0])

    @property
    def n_satisfied(self) -> int:
        """Number of traces satisfying the property."""
        return int(np.count_nonzero(self.satisfied))

    @property
    def n_undecided(self) -> int:
        """Traces whose verdict was still open at the step cap."""
        return self.n_samples - int(np.count_nonzero(self.decided))

    @property
    def total_length(self) -> int:
        """Total number of simulated transitions."""
        return int(self.lengths.sum())

    @property
    def mean_length(self) -> float:
        """Average trace length (transitions)."""
        n = self.n_samples
        return self.total_length / n if n else 0.0

    def tables(self) -> "list[TransitionCounts | None] | None":
        """Per-trace dict count tables, materializing from arrays if needed.

        Returns ``count_tables`` when present, otherwise converts
        ``count_arrays`` (kernel batches keep counts array-native), and
        ``None`` when counting was off entirely.
        """
        if self.count_tables is not None:
            return self.count_tables
        if self.count_arrays is not None:
            return self.count_arrays.to_tables()
        return None

    def merge(self, other: "EnsembleResult") -> "EnsembleResult":
        """Concatenate two batches along the trace axis."""
        return EnsembleResult.concatenate([self, other])

    @staticmethod
    def concatenate(chunks: "list[EnsembleResult]") -> "EnsembleResult":
        """Concatenate many batches with one copy per field.

        Optional fields survive only when every chunk carries them. Counts
        stay array-native when every chunk has ``count_arrays``; when
        chunks mix representations but all have counts in *some* form,
        the result falls back to materialized dict tables.
        """
        if not chunks:
            raise EstimationError("no chunks to concatenate")
        if len(chunks) == 1:
            return chunks[0]
        logp = None
        if all(c.log_proposals is not None for c in chunks):
            logp = np.concatenate([c.log_proposals for c in chunks])
        lognum = None
        if all(c.log_numerators is not None for c in chunks):
            lognum = np.concatenate([c.log_numerators for c in chunks])
        tables = None
        arrays = None
        if all(c.count_arrays is not None for c in chunks):
            arrays = TraceCounts.concatenate([c.count_arrays for c in chunks])
        elif all(c.count_tables is not None for c in chunks):
            tables = [t for c in chunks for t in c.count_tables]
        elif all(
            c.count_tables is not None or c.count_arrays is not None for c in chunks
        ):
            tables = [t for c in chunks for t in c.tables()]
        return EnsembleResult(
            satisfied=np.concatenate([c.satisfied for c in chunks]),
            decided=np.concatenate([c.decided for c in chunks]),
            lengths=np.concatenate([c.lengths for c in chunks]),
            log_proposals=logp,
            count_tables=tables,
            log_numerators=lognum,
            count_arrays=arrays,
        )

    def to_summary(self) -> BatchSummary:
        """Materialize per-trace :class:`TraceRecord` objects."""
        summary = BatchSummary(
            n_samples=self.n_samples,
            n_satisfied=self.n_satisfied,
            n_undecided=self.n_undecided,
            total_length=self.total_length,
        )
        satisfied = self.satisfied.tolist()
        decided = self.decided.tolist()
        lengths = self.lengths.tolist()
        logp = self.log_proposals.tolist() if self.log_proposals is not None else None
        tables = self.tables()
        for k in range(self.n_samples):
            summary.records.append(
                TraceRecord(
                    satisfied=satisfied[k],
                    length=lengths[k],
                    counts=tables[k] if tables is not None else None,
                    log_proposal=logp[k] if logp is not None else 0.0,
                    decided=decided[k],
                )
            )
        return summary


class SimulationBackend:
    """Protocol of a simulation backend: run batches against one plan."""

    #: Identifier reported in diagnostics (``"sequential"``/``"vectorized"``).
    name: str

    @property
    def plan(self) -> SimulationPlan:
        """The sampling plan this backend executes."""
        raise NotImplementedError

    def run(self, n_samples: int, rng: np.random.Generator) -> BatchSummary:
        """Sample *n_samples* traces and aggregate them into records."""
        return self.run_ensemble(n_samples, rng).to_summary()

    def run_ensemble(self, n_samples: int, rng: np.random.Generator) -> EnsembleResult:
        """Sample *n_samples* traces into flat per-trace arrays."""
        raise NotImplementedError


class SequentialBackend(SimulationBackend):
    """The reference backend: one scalar Python loop per trace.

    Exact extraction of the original per-trace simulation semantics; the
    vectorized backend is tested against it verdict for verdict.
    """

    name = "sequential"

    def __init__(self, plan: SimulationPlan):
        self._plan = plan
        self._compiled = CompiledChain(plan.chain)
        self._cuts = 0

    @property
    def plan(self) -> SimulationPlan:
        return self._plan

    def sample_one(self, rng: np.random.Generator) -> TraceRecord:
        """Sample one trace; returns its :class:`TraceRecord`."""
        plan = self._plan
        monitor = plan.monitor_factory()
        state = plan.initial_state
        verdict = monitor.update(state)
        if (
            not verdict.decided
            and plan.futility is not None
            and plan.futility.applies(state, 0)
        ):
            verdict = mon.Verdict.FALSE
            self._cuts += 1
        keep_counts = plan.count_mode != "none"
        counts = TransitionCounts() if keep_counts else None
        log_prob = 0.0
        steps = 0
        while not verdict.decided and steps < plan.max_steps:
            next_state, step_log_prob = self._compiled.step(state, rng)
            if counts is not None:
                counts.record(state, next_state)
            if plan.record_log_prob:
                log_prob += step_log_prob
            state = next_state
            steps += 1
            verdict = monitor.update(state)
            if (
                not verdict.decided
                and plan.futility is not None
                and plan.futility.applies(state, steps)
            ):
                verdict = mon.Verdict.FALSE
                self._cuts += 1
        satisfied = verdict is mon.Verdict.TRUE
        if plan.count_mode == "satisfied" and not satisfied:
            counts = None
        return TraceRecord(
            satisfied=satisfied,
            length=steps,
            counts=counts,
            log_proposal=log_prob,
            decided=verdict.decided,
        )

    def run_ensemble(self, n_samples: int, rng: np.random.Generator) -> EnsembleResult:
        if n_samples <= 0:
            raise EstimationError("n_samples must be positive")
        plan = self._plan
        satisfied = np.empty(n_samples, dtype=bool)
        decided = np.empty(n_samples, dtype=bool)
        lengths = np.empty(n_samples, dtype=np.int64)
        logp = np.empty(n_samples, dtype=np.float64) if plan.record_log_prob else None
        tables: "list[TransitionCounts | None] | None" = (
            [] if plan.count_mode != "none" else None
        )
        cuts_before = self._cuts
        started = _time.perf_counter()
        with _obs_trace.span("simulate", backend=self.name, traces=n_samples) as sp:
            for k in range(n_samples):
                record = self.sample_one(rng)
                satisfied[k] = record.satisfied
                decided[k] = record.decided
                lengths[k] = record.length
                if logp is not None:
                    logp[k] = record.log_proposal
                if tables is not None:
                    tables.append(record.counts)
            result = EnsembleResult(
                satisfied=satisfied,
                decided=decided,
                lengths=lengths,
                log_proposals=logp,
                count_tables=tables,
            )
            sp.annotate(
                satisfied=int(np.count_nonzero(satisfied)),
                steps=int(lengths.sum()),
                futility_cuts=self._cuts - cuts_before,
            )
        _record_ensemble(
            self.name, result, _time.perf_counter() - started, self._cuts - cuts_before
        )
        return result


class VectorizedBackend(SimulationBackend):
    """Lockstep ensemble backend: advances all live traces per step at once.

    Requires the formula to compile to a
    :class:`~repro.properties.monitor.VectorMonitor` (the reach/avoid/
    bounded-until fragment); :func:`resolve_backend` falls back to
    :class:`SequentialBackend` otherwise.

    Per simulated step the backend performs a constant number of NumPy
    operations on arrays sized by the number of live traces: one uniform
    batch draw, one flat ``searchsorted`` gather through
    :class:`CompiledCSR`, mask gathers for the monitor and futility
    verdicts, and (when requested) appends of flat
    ``source * n_states + target`` transition keys. Count tables are
    reduced afterwards with one ``lexsort`` + run-length encoding over all
    recorded keys — the ``np.bincount``-style aggregation is deferred off
    the hot loop.
    """

    name = "vectorized"

    def __init__(self, plan: SimulationPlan, max_ensemble: int = DEFAULT_MAX_ENSEMBLE):
        if plan.vector_monitor is None:
            raise EstimationError(
                f"{plan.formula!r} does not compile to a vectorized monitor; "
                "use the sequential backend"
            )
        if max_ensemble <= 0:
            raise EstimationError("max_ensemble must be positive")
        self._plan = plan
        self._max_ensemble = int(max_ensemble)
        self._csr = CompiledCSR.from_chain(plan.chain)
        # Fused IS numerator: a per-CSR-entry log a_ij table so the loop
        # accumulates weights with the same gather it uses for log b_ij.
        self._wlogs = (
            entry_weight_logs(
                self._csr.n_states,
                self._csr.indptr,
                self._csr.indices,
                plan.weight_chain,
                plan.weight_state_map,
            )
            if plan.weight_chain is not None
            else None
        )

    @property
    def plan(self) -> SimulationPlan:
        return self._plan

    @property
    def csr(self) -> CompiledCSR:
        """The upfront-compiled chain arrays."""
        return self._csr

    def run_ensemble(self, n_samples: int, rng: np.random.Generator) -> EnsembleResult:
        if n_samples <= 0:
            raise EstimationError("n_samples must be positive")
        chunks: list[EnsembleResult] = []
        remaining = n_samples
        cuts = 0
        started = _time.perf_counter()
        with _obs_trace.span("simulate", backend=self.name, traces=n_samples) as sp:
            while remaining > 0:
                chunk, chunk_cuts = self._simulate(min(remaining, self._max_ensemble), rng)
                chunks.append(chunk)
                cuts += chunk_cuts
                remaining -= chunk.n_samples
            result = EnsembleResult.concatenate(chunks)
            sp.annotate(
                satisfied=int(np.count_nonzero(result.satisfied)),
                steps=int(result.lengths.sum()),
                futility_cuts=cuts,
            )
        _record_ensemble(self.name, result, _time.perf_counter() - started, cuts)
        return result

    def _simulate(self, n: int, rng: np.random.Generator) -> "tuple[EnsembleResult, int]":
        plan, csr = self._plan, self._csr
        vm = plan.vector_monitor
        assert vm is not None
        fut = plan.futility
        keep_counts = plan.count_mode != "none"
        count_cuts = _count_cuts()
        cuts = 0

        states = np.full(n, plan.initial_state, dtype=np.int64)
        verdicts = vm.update(states, 0).copy()
        if fut is not None and 0 >= fut.start_position:
            cut = (verdicts == mon.VECTOR_UNDECIDED) & fut.mask[states]
            if count_cuts:
                cuts += int(np.count_nonzero(cut))
            verdicts[cut] = mon.VECTOR_FALSE
        lengths = np.zeros(n, dtype=np.int64)
        logp = np.zeros(n, dtype=np.float64) if plan.record_log_prob else None
        wlogs = self._wlogs
        lognum = np.zeros(n, dtype=np.float64) if wlogs is not None else None
        step_traces: list[np.ndarray] = []
        step_keys: list[np.ndarray] = []

        active = np.flatnonzero(verdicts == mon.VECTOR_UNDECIDED)
        time = 0
        while active.size and time < plan.max_steps:
            current = states[active]
            pos, nxt = csr.gather_step(current, rng)
            if logp is not None:
                logp[active] += csr.logprobs[pos]
            if lognum is not None:
                lognum[active] += wlogs[pos]
            if keep_counts:
                step_traces.append(active)
                step_keys.append(current * csr.n_states + nxt)
            states[active] = nxt
            lengths[active] += 1
            time += 1
            codes = vm.update(nxt, time)
            if fut is not None and time >= fut.start_position:
                cut = (codes == mon.VECTOR_UNDECIDED) & fut.mask[nxt]
                # Copy only when a cut actually lands: the monitor owns the
                # returned array, but most steps cut nothing.
                if cut.any():
                    if count_cuts:
                        cuts += int(np.count_nonzero(cut))
                    codes = codes.copy()
                    codes[cut] = mon.VECTOR_FALSE
            verdicts[active] = codes
            active = active[codes == mon.VECTOR_UNDECIDED]
            if (
                keep_counts
                and plan.count_mode == "satisfied"
                and time % COMPACT_INTERVAL == 0
                and len(step_traces) > 1
            ):
                useful = verdicts != mon.VECTOR_FALSE  # still live or satisfied
                traces_cat = np.concatenate(step_traces)
                keys_cat = np.concatenate(step_keys)
                sel = useful[traces_cat]
                step_traces = [traces_cat[sel]]
                step_keys = [keys_cat[sel]]

        satisfied = verdicts == mon.VECTOR_TRUE
        decided = verdicts != mon.VECTOR_UNDECIDED
        counts_list: "list[TransitionCounts | None] | None" = None
        if keep_counts:
            counts_list = [None] * n
            want = satisfied if plan.count_mode == "satisfied" else np.ones(n, dtype=bool)
            for k in np.flatnonzero(want).tolist():
                counts_list[k] = TransitionCounts()
            if step_traces:
                self._fill_counts(counts_list, want, step_traces, step_keys)
        return (
            EnsembleResult(
                satisfied=satisfied,
                decided=decided,
                lengths=lengths,
                log_proposals=logp,
                count_tables=counts_list,
                log_numerators=lognum,
            ),
            cuts,
        )

    def _fill_counts(
        self,
        counts_list: "list[TransitionCounts | None]",
        want: np.ndarray,
        step_traces: list[np.ndarray],
        step_keys: list[np.ndarray],
    ) -> None:
        """Aggregate recorded flat transition keys into per-trace tables."""
        traces = np.concatenate(step_traces)
        keys = np.concatenate(step_keys)
        sel = want[traces]
        traces, keys = traces[sel], keys[sel]
        if not traces.size:
            return
        order = np.lexsort((keys, traces))
        traces, keys = traces[order], keys[order]
        # Run-length encode identical (trace, key) pairs: the run lengths
        # are exactly the n_ij counts of Equation (1).
        new_pair = np.empty(traces.size, dtype=bool)
        new_pair[0] = True
        new_pair[1:] = (traces[1:] != traces[:-1]) | (keys[1:] != keys[:-1])
        starts = np.flatnonzero(new_pair)
        run_lengths = np.diff(np.append(starts, traces.size))
        pair_traces = traces[starts]
        pair_keys = keys[starts]
        sources, targets = np.divmod(pair_keys, self._csr.n_states)
        # Slice the per-pair arrays into per-trace groups.
        new_trace = np.empty(pair_traces.size, dtype=bool)
        new_trace[0] = True
        new_trace[1:] = pair_traces[1:] != pair_traces[:-1]
        group_bounds = np.append(np.flatnonzero(new_trace), pair_traces.size).tolist()
        pairs = list(zip(sources.tolist(), targets.tolist()))
        count_list = run_lengths.tolist()
        trace_ids = pair_traces.tolist()
        for a, b in zip(group_bounds[:-1], group_bounds[1:]):
            table = counts_list[trace_ids[a]]
            assert table is not None
            table.counts.update(dict(zip(pairs[a:b], count_list[a:b])))


class KernelBackend(SimulationBackend):
    """Compiled kernel tier: the lockstep loop through ``smc.kernels``.

    Same skeleton, chunking and RNG consumption as
    :class:`VectorizedBackend` — one uniform batch draw per step, drawn by
    this driver and passed into the kernels, so verdicts, lengths and
    log-proposals are **bitwise identical** to the vectorized backend's —
    but every per-step operation (CSR gather-step, monitor-mask update,
    futility cut, log-weight accumulation) runs through the active
    :mod:`repro.smc.kernels` tier (``@njit`` when numba is installed, the
    bitwise-matching NumPy fallback otherwise; see
    :func:`~repro.smc.kernels.kernel_runtime_info`).

    Two structural differences close the IS hot-path gap:

    * transition counts stay array-native — one
      :class:`~repro.smc.kernels.TraceCounts` COO block per batch instead
      of a Python dict per trace, convertible back on demand;
    * when the plan carries a ``weight_chain``, the IS numerator
      ``Σ n_ij log a_ij`` accumulates inside the loop (fused weights), so
      the estimator never walks per-trace tables at all.

    Requires the vector monitor to expose a
    :meth:`~repro.properties.monitor.VectorMonitor.mask_spec`;
    :func:`resolve_backend` falls back to :class:`VectorizedBackend` (or
    sequential) otherwise.
    """

    name = "kernel"

    def __init__(self, plan: SimulationPlan, max_ensemble: int = DEFAULT_MAX_ENSEMBLE):
        vm = plan.vector_monitor
        spec = vm.mask_spec() if vm is not None else None
        if spec is None:
            raise EstimationError(
                f"{plan.formula!r} exposes no monitor mask spec; "
                "use the vectorized or sequential backend"
            )
        if max_ensemble <= 0:
            raise EstimationError("max_ensemble must be positive")
        self._plan = plan
        self._max_ensemble = int(max_ensemble)
        self._csr = CompiledCSR.from_chain(plan.chain)
        self._wlogs = (
            entry_weight_logs(
                self._csr.n_states,
                self._csr.indptr,
                self._csr.indices,
                plan.weight_chain,
                plan.weight_state_map,
            )
            if plan.weight_chain is not None
            else None
        )
        # Unpack the spec into kernel-ready scalars and arrays; optional
        # masks become one-element dummies so the njit tier sees stable
        # array types instead of None.
        kinds = {
            "state": _kernels.KIND_STATE,
            "until": _kernels.KIND_UNTIL,
            "globally": _kernels.KIND_GLOBALLY,
        }
        dummy = np.zeros(1, dtype=bool)
        self._kind = kinds[spec.kind]
        self._rhs = np.ascontiguousarray(spec.rhs, dtype=bool)
        self._lhs = (
            np.ascontiguousarray(spec.lhs, dtype=bool) if spec.lhs is not None else dummy
        )
        self._has_init = spec.initial_check is not None
        self._init = (
            np.ascontiguousarray(spec.initial_check, dtype=bool)
            if self._has_init
            else dummy
        )
        self._bound = -1 if spec.bound is None else int(spec.bound)
        self._n_next = int(spec.n_next)
        self._lhs_exempt = bool(spec.lhs_exempt)

    @property
    def plan(self) -> SimulationPlan:
        return self._plan

    @property
    def csr(self) -> CompiledCSR:
        """The upfront-compiled chain arrays."""
        return self._csr

    def _codes(self, states: np.ndarray, time: int) -> np.ndarray:
        return _kernels.monitor_codes(
            states,
            time,
            self._kind,
            self._lhs,
            self._rhs,
            self._init,
            self._has_init,
            self._bound,
            self._n_next,
            self._lhs_exempt,
        )

    def run_ensemble(self, n_samples: int, rng: np.random.Generator) -> EnsembleResult:
        if n_samples <= 0:
            raise EstimationError("n_samples must be positive")
        chunks: list[EnsembleResult] = []
        remaining = n_samples
        cuts = 0
        started = _time.perf_counter()
        with _obs_trace.span(
            "simulate", backend=self.name, traces=n_samples, tier=_KERNEL_TIER
        ) as sp:
            while remaining > 0:
                chunk, chunk_cuts = self._simulate(min(remaining, self._max_ensemble), rng)
                chunks.append(chunk)
                cuts += chunk_cuts
                remaining -= chunk.n_samples
            result = EnsembleResult.concatenate(chunks)
            sp.annotate(
                satisfied=int(np.count_nonzero(result.satisfied)),
                steps=int(result.lengths.sum()),
                futility_cuts=cuts,
            )
        _record_ensemble(self.name, result, _time.perf_counter() - started, cuts)
        return result

    def _simulate(self, n: int, rng: np.random.Generator) -> "tuple[EnsembleResult, int]":
        plan, csr = self._plan, self._csr
        fut = plan.futility
        keep_counts = plan.count_mode != "none"
        count_cuts = _count_cuts()
        cuts = 0

        states = np.full(n, plan.initial_state, dtype=np.int64)
        verdicts = self._codes(states, 0)
        if fut is not None and 0 >= fut.start_position:
            if count_cuts:
                false_before = int(np.count_nonzero(verdicts == mon.VECTOR_FALSE))
            _kernels.futility_cut(verdicts, fut.mask, states)
            if count_cuts:
                cuts += int(np.count_nonzero(verdicts == mon.VECTOR_FALSE)) - false_before
        lengths = np.zeros(n, dtype=np.int64)
        logp = np.zeros(n, dtype=np.float64) if plan.record_log_prob else None
        wlogs = self._wlogs
        lognum = np.zeros(n, dtype=np.float64) if wlogs is not None else None
        step_traces: list[np.ndarray] = []
        step_keys: list[np.ndarray] = []

        active = np.flatnonzero(verdicts == mon.VECTOR_UNDECIDED)
        time = 0
        while active.size and time < plan.max_steps:
            current = states[active]
            # The driver owns the RNG: one uniform batch per step, exactly
            # the vectorized backend's consumption order, so both kernel
            # tiers realise its traces bitwise.
            u = rng.random(current.shape[0])
            pos, nxt = _kernels.gather_step(
                csr.indptr, csr.indices, csr.cumprobs, current, u
            )
            if logp is not None:
                _kernels.gather_add(logp, active, csr.logprobs, pos)
            if lognum is not None:
                _kernels.gather_add(lognum, active, wlogs, pos)
            if keep_counts:
                step_traces.append(active)
                step_keys.append(current * csr.n_states + nxt)
            states[active] = nxt
            lengths[active] += 1
            time += 1
            codes = self._codes(nxt, time)
            if fut is not None and time >= fut.start_position:
                if count_cuts:
                    false_before = int(np.count_nonzero(codes == mon.VECTOR_FALSE))
                _kernels.futility_cut(codes, fut.mask, nxt)
                if count_cuts:
                    cuts += (
                        int(np.count_nonzero(codes == mon.VECTOR_FALSE)) - false_before
                    )
            verdicts[active] = codes
            active = active[codes == mon.VECTOR_UNDECIDED]
            if (
                keep_counts
                and plan.count_mode == "satisfied"
                and time % COMPACT_INTERVAL == 0
                and len(step_traces) > 1
            ):
                useful = verdicts != mon.VECTOR_FALSE  # still live or satisfied
                traces_cat = np.concatenate(step_traces)
                keys_cat = np.concatenate(step_keys)
                sel = useful[traces_cat]
                step_traces = [traces_cat[sel]]
                step_keys = [keys_cat[sel]]

        satisfied = verdicts == mon.VECTOR_TRUE
        decided = verdicts != mon.VECTOR_UNDECIDED
        count_arrays = None
        if keep_counts:
            want = (
                satisfied if plan.count_mode == "satisfied" else np.ones(n, dtype=bool)
            )
            count_arrays = TraceCounts.from_step_keys(
                n, csr.n_states, want, step_traces, step_keys
            )
        return (
            EnsembleResult(
                satisfied=satisfied,
                decided=decided,
                lengths=lengths,
                log_proposals=logp,
                log_numerators=lognum,
                count_arrays=count_arrays,
            ),
            cuts,
        )


def resolve_backend(
    backend: "str | SimulationBackend | None", plan: SimulationPlan
) -> SimulationBackend:
    """Turn a backend selector into a backend instance for *plan*.

    Parameters
    ----------
    backend : str, SimulationBackend or None
        ``"auto"`` (and ``None``) picks the fastest applicable tier:
        :class:`KernelBackend` when the plan's vector monitor exposes a
        mask spec, else :class:`VectorizedBackend` when the formula
        compiled to a vector monitor at all, else
        :class:`SequentialBackend`. ``"kernel"`` requests the kernel
        tier explicitly with the same fallbacks; ``"vectorized"`` picks
        :class:`VectorizedBackend` (sequential fallback);
        ``"sequential"`` always picks the reference backend;
        ``"parallel"`` shards batches across a process pool
        (:class:`~repro.smc.parallel.ParallelBackend` with default
        settings — construct it directly to tune workers or shard
        size). An already constructed backend passes through untouched.
    plan : SimulationPlan
        The plan the backend will execute.

    Returns
    -------
    SimulationBackend
        A backend ready to run batches of *plan*.

    Raises
    ------
    EstimationError
        When *backend* names no known selector.
    """
    if isinstance(backend, SimulationBackend):
        return backend
    if backend is None:
        backend = "auto"
    if backend not in BACKEND_NAMES:
        raise EstimationError(f"backend must be one of {BACKEND_NAMES}, got {backend!r}")
    if backend == "parallel":
        from repro.smc.parallel import ParallelBackend

        return ParallelBackend(plan)
    vm = plan.vector_monitor
    if backend in ("auto", "kernel") and vm is not None and vm.mask_spec() is not None:
        return KernelBackend(plan)
    if backend in ("auto", "kernel", "vectorized") and vm is not None:
        return VectorizedBackend(plan)
    return SequentialBackend(plan)


#: Default traces per batch for sequential tests walking verdicts one by
#: one (SPRT, Bayes factor): large enough to amortise the vectorized
#: engine's per-batch overhead, small enough that early stopping wastes
#: little simulation.
DEFAULT_CHUNK_SIZE = 256


def iter_chunks(total: int, chunk_size: int) -> Iterator[int]:
    """Yield chunk sizes covering *total* samples, each at most *chunk_size*.

    Helper for sequential tests (SPRT, Bayes factor) that consume batches
    but stop early: they draw one chunk at a time and walk its verdicts.
    """
    if total <= 0:
        raise EstimationError("total must be positive")
    if chunk_size <= 0:
        raise EstimationError("chunk_size must be positive")
    remaining = total
    while remaining > 0:
        take = min(remaining, chunk_size)
        yield take
        remaining -= take


def iter_verdicts(
    sampler,
    max_samples: int,
    rng: np.random.Generator,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[bool]:
    """Yield up to *max_samples* per-trace satisfaction verdicts.

    Draws batches of *chunk_size* from *sampler* (anything exposing
    ``sample_ensemble`` and ``backend_name``, i.e. a
    :class:`~repro.smc.simulator.TraceSampler`) and flattens them into an
    early-stoppable verdict stream. On a non-vectorized backend the chunk
    size collapses to one — batching only pays off when simulation is
    vectorized, and a scalar backend would waste up to ``chunk_size - 1``
    traces past the consumer's stopping point.
    """
    if sampler.backend_name not in ("vectorized", "kernel"):
        chunk_size = 1
    for take in iter_chunks(max_samples, chunk_size):
        yield from sampler.sample_ensemble(take, rng).satisfied.tolist()
