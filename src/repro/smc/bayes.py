"""Bayesian estimation for statistical model checking.

The paper notes (Section I) that SMC "is not limited to frequentist
inference and may use alternative efficient techniques, such as Bayesian
inference [Jha et al., CMSB 2009]". This module provides the standard
Beta–Bernoulli machinery: a conjugate posterior over ``γ`` from trace
verdicts, credible intervals, and the Bayes-factor test of Jha et al.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.dtmc import DTMC
from repro.errors import EstimationError
from repro.properties.logic import Formula
from repro.smc.engine import DEFAULT_CHUNK_SIZE, iter_verdicts
from repro.smc.results import ConfidenceInterval
from repro.smc.simulator import TraceSampler
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class BetaPosterior:
    """A Beta(α, β) posterior over a satisfaction probability."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise EstimationError("Beta parameters must be positive")

    @property
    def mean(self) -> float:
        """Posterior mean ``α / (α + β)``."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def mode(self) -> float | None:
        """Posterior mode (undefined when either parameter is below one)."""
        if self.alpha <= 1 or self.beta <= 1:
            return None
        return (self.alpha - 1) / (self.alpha + self.beta - 2)

    @property
    def variance(self) -> float:
        """Posterior variance."""
        total = self.alpha + self.beta
        return self.alpha * self.beta / (total * total * (total + 1.0))

    def update(self, successes: int, failures: int) -> "BetaPosterior":
        """Conjugate update with new Bernoulli observations."""
        if successes < 0 or failures < 0:
            raise EstimationError("counts must be non-negative")
        return BetaPosterior(self.alpha + successes, self.beta + failures)

    def credible_interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Equal-tailed credible interval at the given level."""
        if not 0.0 < confidence < 1.0:
            raise EstimationError("confidence must be in (0, 1)")
        tail = (1.0 - confidence) / 2.0
        low = float(stats.beta.ppf(tail, self.alpha, self.beta))
        high = float(stats.beta.ppf(1.0 - tail, self.alpha, self.beta))
        return ConfidenceInterval(low, high, confidence)

    def probability_above(self, threshold: float) -> float:
        """Posterior probability that γ exceeds *threshold*."""
        return float(stats.beta.sf(threshold, self.alpha, self.beta))


@dataclass(frozen=True)
class BayesianResult:
    """Outcome of a Bayesian estimation run."""

    posterior: BetaPosterior
    interval: ConfidenceInterval
    n_samples: int
    n_satisfied: int

    @property
    def estimate(self) -> float:
        """Posterior-mean point estimate."""
        return self.posterior.mean


def bayesian_estimate(
    model: DTMC,
    formula: Formula,
    n_samples: int,
    rng: np.random.Generator | int | None = None,
    prior: BetaPosterior = BetaPosterior(1.0, 1.0),
    confidence: float = 0.95,
    max_steps: int | None = None,
    backend: str | None = "auto",
) -> BayesianResult:
    """Estimate ``P(model ⊨ formula)`` with a Beta–Bernoulli posterior.

    The verdicts are exchangeable, so the whole sample is drawn as one
    batch on the selected simulation *backend*.
    """
    if n_samples <= 0:
        raise EstimationError("n_samples must be positive")
    generator = ensure_rng(rng)
    sampler = TraceSampler(
        model, formula, max_steps=max_steps, count_mode="none", backend=backend
    )
    successes = sampler.sample_ensemble(n_samples, generator).n_satisfied
    posterior = prior.update(successes, n_samples - successes)
    return BayesianResult(
        posterior=posterior,
        interval=posterior.credible_interval(confidence),
        n_samples=n_samples,
        n_satisfied=successes,
    )


def bayes_factor_test(
    model: DTMC,
    formula: Formula,
    threshold: float,
    bayes_factor_bound: float = 100.0,
    prior: BetaPosterior = BetaPosterior(1.0, 1.0),
    rng: np.random.Generator | int | None = None,
    max_samples: int = 1_000_000,
    max_steps: int | None = None,
    backend: str | None = "auto",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[str, int]:
    """Sequential Bayes-factor test of ``H0: γ >= threshold`` (Jha et al.).

    Samples until the Bayes factor ``P(H0|data)/P(H1|data) ×
    P(H1)/P(H0)`` exceeds *bayes_factor_bound* (accept) or drops below its
    reciprocal (reject). Returns ``(decision, samples_used)`` with decision
    in ``{"accept", "reject", "undecided"}``. Traces come from the
    simulation engine in batches of *chunk_size*; the factor is updated
    per verdict, so the stopping index matches one-at-a-time sampling.
    """
    if not 0.0 < threshold < 1.0:
        raise EstimationError("threshold must be in (0, 1)")
    if bayes_factor_bound <= 1.0:
        raise EstimationError("bayes_factor_bound must exceed 1")
    generator = ensure_rng(rng)
    sampler = TraceSampler(
        model, formula, max_steps=max_steps, count_mode="none", backend=backend
    )
    prior_h0 = prior.probability_above(threshold)
    prior_h1 = 1.0 - prior_h0
    if prior_h0 <= 0.0 or prior_h1 <= 0.0:
        raise EstimationError("the prior must give both hypotheses positive mass")
    prior_odds = prior_h1 / prior_h0

    successes = 0
    n = 0
    for satisfied in iter_verdicts(sampler, max_samples, generator, chunk_size):
        n += 1
        successes += int(satisfied)
        posterior = prior.update(successes, n - successes)
        p_h0 = posterior.probability_above(threshold)
        p_h1 = 1.0 - p_h0
        if p_h1 <= 0.0:
            return "accept", n
        if p_h0 <= 0.0:
            return "reject", n
        factor = (p_h0 / p_h1) * prior_odds
        if factor >= bayes_factor_bound:
            return "accept", n
        if factor <= 1.0 / bayes_factor_bound:
            return "reject", n
    return "undecided", max_samples
