"""Confidence-interval and error-bound arithmetic.

Implements the interval constructions the paper relies on:

* the normal-approximation interval
  ``γ̂ ± Φ⁻¹(1 − δ/2) σ̂ / sqrt(N)`` (Sections II-C and III-A),
* the Okamoto (a.k.a. Chernoff–Hoeffding) bound used in Section II-B to
  derive learning margins: ``P(|γ̂ − γ| > ε) <= 2 exp(−2 N ε²)``,
* Wilson's score interval as a robust alternative for Bernoulli data.
"""

from __future__ import annotations

import math

from scipy import stats

from repro.errors import EstimationError
from repro.smc.results import ConfidenceInterval


def normal_quantile(confidence: float) -> float:
    """``Φ⁻¹(1 − δ/2)`` for a two-sided interval at level *confidence*."""
    if not 0.0 < confidence < 1.0:
        raise EstimationError(f"confidence must be in (0, 1), got {confidence}")
    delta = 1.0 - confidence
    return float(stats.norm.ppf(1.0 - delta / 2.0))


def normal_ci(
    mean: float, std_dev: float, n_samples: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation interval ``mean ± z σ̂ / sqrt(N)``.

    The lower endpoint is clipped at zero: the estimated quantities are
    probabilities.
    """
    if n_samples <= 0:
        raise EstimationError("n_samples must be positive")
    if std_dev < 0:
        raise EstimationError("standard deviation must be non-negative")
    z = normal_quantile(confidence)
    half = z * std_dev / math.sqrt(n_samples)
    return ConfidenceInterval(max(0.0, mean - half), mean + half, confidence)


def bernoulli_ci(successes: int, n_samples: int, confidence: float = 0.95) -> ConfidenceInterval:
    """Normal interval for a Bernoulli proportion (Equation after (3))."""
    if n_samples <= 0:
        raise EstimationError("n_samples must be positive")
    p = successes / n_samples
    std_dev = math.sqrt(p * (1.0 - p))
    return normal_ci(p, std_dev, n_samples, confidence)


def wilson_ci(successes: int, n_samples: int, confidence: float = 0.95) -> ConfidenceInterval:
    """Wilson score interval — well-behaved at very small proportions."""
    if n_samples <= 0:
        raise EstimationError("n_samples must be positive")
    z = normal_quantile(confidence)
    p = successes / n_samples
    denom = 1.0 + z * z / n_samples
    centre = (p + z * z / (2 * n_samples)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / n_samples + z * z / (4 * n_samples * n_samples))
    return ConfidenceInterval(max(0.0, centre - half), min(1.0, centre + half), confidence)


def okamoto_epsilon(n_samples: int, delta: float) -> float:
    """Okamoto-bound absolute error: ``ε = sqrt(ln(2/δ) / (2N))``.

    Section II-B uses this to turn a learnt transition frequency into an
    interval: with ``δ = 1e-5`` and ``N = 1e4``, ``ε ≈ 0.025`` — matching
    the paper's worked example.
    """
    if n_samples <= 0:
        raise EstimationError("n_samples must be positive")
    if not 0.0 < delta < 1.0:
        raise EstimationError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n_samples))


def okamoto_sample_size(epsilon: float, delta: float) -> int:
    """Samples needed so the Okamoto bound gives absolute error *epsilon*."""
    if epsilon <= 0:
        raise EstimationError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise EstimationError(f"delta must be in (0, 1), got {delta}")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def chernoff_ci(successes: int, n_samples: int, delta: float) -> ConfidenceInterval:
    """Absolute-error interval from the Okamoto/Chernoff bound."""
    eps = okamoto_epsilon(n_samples, delta)
    p = successes / n_samples
    return ConfidenceInterval(max(0.0, p - eps), min(1.0, p + eps), 1.0 - delta)


def required_samples_relative_error(gamma: float, relative_error: float) -> int:
    """Samples for a target relative error under crude Monte Carlo.

    Section III: the relative error of the Monte Carlo estimator is
    ``z sqrt((1−γ)/(N γ))``; for RE = 10 % one needs ``N ≈ 100/γ``
    (paper's rule of thumb, with z ≈ 1). Returns ``(1−γ)/(γ RE²)``.
    """
    if not 0.0 < gamma < 1.0:
        raise EstimationError("gamma must be in (0, 1)")
    if relative_error <= 0:
        raise EstimationError("relative_error must be positive")
    return math.ceil((1.0 - gamma) / (gamma * relative_error * relative_error))
