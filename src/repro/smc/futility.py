"""Futility detection: stop traces that can no longer satisfy the property.

An unbounded ``F "goal"`` monitor never returns FALSE on its own — a trace
absorbed in a failure state would simulate forever (until the step cap).
For properties with an :class:`~repro.properties.logic.UntilSpec` shape the
set of *futile* states — states from which satisfaction has probability
zero under the sampled chain — is computable by graph analysis (prob0).
:class:`repro.smc.simulator.TraceSampler` consults the futility mask and
declares FALSE as soon as the trace enters it.

The mask only applies from ``start_position`` onwards: for specs with a
leading ``X`` or the exempt-until shape, position 0 plays by different
rules and is left to the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.graph import prob0_states
from repro.core.dtmc import DTMC
from repro.errors import PropertyError
from repro.properties.logic import Formula, UntilSpec


@dataclass(frozen=True)
class FutilityMask:
    """States where an undecided trace is declared FALSE, from a position."""

    mask: np.ndarray
    start_position: int

    def applies(self, state: int, position: int) -> bool:
        """True when the trace can be cut at *state*/*position*."""
        return position >= self.start_position and bool(self.mask[state])


def futility_mask(chain: DTMC, spec: UntilSpec) -> FutilityMask:
    """Compute the futility mask of *spec* on *chain*.

    For a standard until the futile states are ``prob0(lhs, rhs)``; for the
    exempt shape they are ``prob0(lhs, lhs ∧ rhs)`` (valid from position 1
    of the post-``X^n`` suffix, where the lhs constraint is active).
    """
    if spec.lhs_exempt:
        mask = prob0_states(chain.transitions, spec.lhs_mask, spec.lhs_mask & spec.rhs_mask)
        start = spec.n_next + 1
    else:
        mask = prob0_states(chain.transitions, spec.lhs_mask, spec.rhs_mask)
        start = spec.n_next
    return FutilityMask(mask, start)


def futility_for_formula(chain: DTMC, formula: Formula) -> FutilityMask | None:
    """Best-effort futility mask; ``None`` when the formula has no
    until-spec decomposition (the step cap then bounds the trace).

    Bounded formulas return ``None`` too — their horizon already guarantees
    termination, and the graph-based mask would ignore the bound (it is
    still sound, but rarely worth the precomputation).
    """
    try:
        spec = formula.until_spec(chain)
    except PropertyError:
        return None
    if spec.bound is not None:
        return None
    return futility_mask(chain, spec)
