"""Compiled kernel tier: ``@njit`` lockstep kernels with NumPy fallbacks.

This module holds the innermost operations of the lockstep ensemble loop —
the CSR gather-step, the monitor-mask update, the futility cut and the
log-weight accumulation — in **two interchangeable implementations**:

* a pure-NumPy implementation (always available, the mandatory default in
  environments without numba), and
* a scalar-loop implementation compiled with :func:`numba.njit` when numba
  is importable.

The active tier is selected once at import time; see
:func:`kernel_runtime_info` for what was picked and why. The
``REPRO_KERNEL`` environment variable forces the choice: ``numpy`` pins the
fallback (CI uses this to prove the fallback cannot drift), ``numba``
requests the compiled tier (falling back with a recorded reason when numba
is missing), and ``auto`` (default) uses numba whenever available.

**Parity contract.** Both tiers are bitwise identical: the scalar loops
perform exactly the float comparisons and per-element additions of the
vectorized expressions, so verdicts, trace lengths, log-proposal and
log-numerator accumulators do not depend on the tier (the parity suite runs
twice in CI, once per tier). Likewise the kernel tier's *fused* importance
weights match the classic per-trace table walk up to summation order — see
:func:`repro.importance.estimator.log_weights` for the documented ULP note.

The module also provides :class:`TraceCounts`, the array-native replacement
for per-trace :class:`~repro.core.paths.TransitionCounts` dicts: transition
counts of a whole batch as flat COO arrays, aggregated once per ensemble
with a ``lexsort`` + run-length encoding and convertible back to classic
dict tables on demand (Table I/II outputs).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.paths import TransitionCounts
from repro.errors import EstimationError

__all__ = [
    "KERNEL_TIERS",
    "KIND_GLOBALLY",
    "KIND_STATE",
    "KIND_UNTIL",
    "TraceCounts",
    "entry_weight_logs",
    "flat_pair_log_probs",
    "futility_cut",
    "gather_add",
    "gather_step",
    "kernel_runtime_info",
    "monitor_codes",
]

#: Recognised values of the ``REPRO_KERNEL`` environment variable.
KERNEL_TIERS = ("auto", "numba", "numpy")

#: Monitor-kind codes consumed by :func:`monitor_codes` (kept as plain ints
#: so the numba tier specialises on them without boxing).
KIND_STATE = 0
KIND_UNTIL = 1
KIND_GLOBALLY = 2

#: Verdict codes, mirroring :mod:`repro.properties.monitor`'s
#: ``VECTOR_UNDECIDED`` / ``VECTOR_TRUE`` / ``VECTOR_FALSE``. Duplicated as
#: plain ints (not imported) so the kernels stay free of monitor imports
#: and numba sees compile-time constants.
_UNDECIDED = 0
_TRUE = 1
_FALSE = 2


# ----------------------------------------------------------------------
# Tier selection
# ----------------------------------------------------------------------

_requested = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
if _requested not in KERNEL_TIERS:
    raise EstimationError(
        f"REPRO_KERNEL must be one of {KERNEL_TIERS}, got {_requested!r}"
    )

_numba = None
_numba_error: str | None = None
if _requested != "numpy":
    try:  # pragma: no cover - exercised only where numba is installed
        import numba as _numba  # type: ignore[no-redef]
    except ImportError as error:
        _numba = None
        _numba_error = str(error)

_ACTIVE_TIER = "numba" if _numba is not None else "numpy"


def kernel_runtime_info() -> "dict[str, object]":
    """Describe the kernel tier selected at import time.

    Returns a dict with the active ``tier`` (``"numba"`` or ``"numpy"``),
    the ``requested`` selector (the ``REPRO_KERNEL`` environment variable,
    default ``"auto"``), whether numba is importable, its version when it
    is, and ``fallback_active`` — true when the pure-NumPy implementations
    are serving (surfaced by ``repro --version``).
    """
    return {
        "tier": _ACTIVE_TIER,
        "requested": _requested,
        "numba_available": _numba is not None,
        "numba_version": getattr(_numba, "__version__", None),
        "fallback_active": _ACTIVE_TIER == "numpy",
    }


# ----------------------------------------------------------------------
# Kernel implementations — NumPy (vectorized) and loop (njit) variants
# ----------------------------------------------------------------------


def _gather_step_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    cumprobs: np.ndarray,
    states: np.ndarray,
    u: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized per-row binary search (one transition per live trace).

    Identical to :meth:`repro.smc.engine.CompiledCSR.gather_step` except
    the uniform draws *u* are supplied by the caller — the driver owns the
    RNG so both tiers (and the vectorized backend) consume the stream
    identically.
    """
    lo = indptr[states]
    hi = indptr[states + 1]
    last = hi - 1
    searching = lo < last  # single-successor rows resolve immediately
    while searching.any():
        mid = (lo + hi) >> 1
        go_right = searching & (cumprobs[np.minimum(mid, last)] <= u)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(searching & ~go_right, mid, hi)
        searching = lo < hi
    pos = np.minimum(lo, last)
    return pos, indices[pos]


def _gather_step_loop(
    indptr: np.ndarray,
    indices: np.ndarray,
    cumprobs: np.ndarray,
    states: np.ndarray,
    u: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Scalar-loop twin of :func:`_gather_step_numpy` (the njit body).

    Performs the same ``cumprobs[mid] <= u`` float comparisons over the
    same ``[lo, hi)`` row slice, so the resolved entry is bitwise the
    NumPy tier's for every trace.
    """
    n = states.shape[0]
    pos = np.empty(n, dtype=np.int64)
    nxt = np.empty(n, dtype=np.int64)
    for k in range(n):
        lo = indptr[states[k]]
        hi = indptr[states[k] + 1]
        last = hi - 1
        while lo < last:
            mid = (lo + hi) >> 1
            if cumprobs[mid] <= u[k]:
                lo = mid + 1
            else:
                hi = mid
            if lo >= hi:
                break
        p = lo if lo < last else last
        pos[k] = p
        nxt[k] = indices[p]
    return pos, nxt


def _monitor_codes_numpy(
    states: np.ndarray,
    time: int,
    kind: int,
    lhs: np.ndarray,
    rhs: np.ndarray,
    init: np.ndarray,
    has_init: bool,
    bound: int,
    n_next: int,
    lhs_exempt: bool,
) -> np.ndarray:
    """Mask-based verdict codes; mirrors the vector monitors branch for
    branch (``bound < 0`` means unbounded)."""
    if kind == KIND_STATE:
        return np.where(rhs[states], np.int8(_TRUE), np.int8(_FALSE))
    out = np.zeros(states.shape[0], dtype=np.int8)
    if kind == KIND_GLOBALLY:
        out[~rhs[states]] = _FALSE
        if time >= bound:
            out[out == _UNDECIDED] = _TRUE
        return out
    t = time - n_next  # position within the until part
    if t >= 0:
        if lhs_exempt and t == 0:
            out[rhs[states]] = _TRUE
            if 0 <= bound <= 0:
                out[out == _UNDECIDED] = _FALSE
        elif lhs_exempt:
            lhs_here = lhs[states]
            out[lhs_here & rhs[states]] = _TRUE
            out[~lhs_here] = _FALSE
            if 0 <= bound <= t:
                out[out == _UNDECIDED] = _FALSE
        else:
            rhs_here = rhs[states]
            out[rhs_here] = _TRUE
            out[~lhs[states] & ~rhs_here] = _FALSE
            if 0 <= bound <= t:
                out[out == _UNDECIDED] = _FALSE
    if time == 0 and has_init:
        out[~init[states]] = _FALSE
    return out


def _monitor_codes_loop(
    states: np.ndarray,
    time: int,
    kind: int,
    lhs: np.ndarray,
    rhs: np.ndarray,
    init: np.ndarray,
    has_init: bool,
    bound: int,
    n_next: int,
    lhs_exempt: bool,
) -> np.ndarray:
    """Scalar-loop twin of :func:`_monitor_codes_numpy` (the njit body)."""
    n = states.shape[0]
    out = np.zeros(n, dtype=np.int8)
    t = time - n_next
    for k in range(n):
        s = states[k]
        code = _UNDECIDED
        if kind == KIND_STATE:
            code = _TRUE if rhs[s] else _FALSE
        elif kind == KIND_GLOBALLY:
            if not rhs[s]:
                code = _FALSE
            elif time >= bound:
                code = _TRUE
        else:  # KIND_UNTIL
            if t >= 0:
                if lhs_exempt and t == 0:
                    if rhs[s]:
                        code = _TRUE
                    elif bound == 0:
                        code = _FALSE
                elif lhs_exempt:
                    if not lhs[s]:
                        code = _FALSE
                    elif rhs[s]:
                        code = _TRUE
                    if code == _UNDECIDED and 0 <= bound <= t:
                        code = _FALSE
                else:
                    if rhs[s]:
                        code = _TRUE
                    elif not lhs[s]:
                        code = _FALSE
                    if code == _UNDECIDED and 0 <= bound <= t:
                        code = _FALSE
            if time == 0 and has_init and not init[s]:
                code = _FALSE
        out[k] = code
    return out


def _futility_cut_numpy(
    codes: np.ndarray, fut_mask: np.ndarray, states: np.ndarray
) -> None:
    """Turn undecided traces sitting in futile states to FALSE, in place."""
    codes[(codes == _UNDECIDED) & fut_mask[states]] = _FALSE


def _futility_cut_loop(
    codes: np.ndarray, fut_mask: np.ndarray, states: np.ndarray
) -> None:
    """Scalar-loop twin of :func:`_futility_cut_numpy` (the njit body)."""
    for k in range(codes.shape[0]):
        if codes[k] == _UNDECIDED and fut_mask[states[k]]:
            codes[k] = _FALSE


def _gather_add_numpy(
    acc: np.ndarray, idx: np.ndarray, table: np.ndarray, pos: np.ndarray
) -> None:
    """``acc[idx] += table[pos]`` — the per-step log-weight accumulation.

    *idx* holds distinct trace slots (the live set), so the fancy-indexed
    add has no scatter collisions and performs exactly one IEEE addition
    per trace — bitwise the loop tier's.
    """
    acc[idx] += table[pos]


def _gather_add_loop(
    acc: np.ndarray, idx: np.ndarray, table: np.ndarray, pos: np.ndarray
) -> None:
    """Scalar-loop twin of :func:`_gather_add_numpy` (the njit body)."""
    for k in range(idx.shape[0]):
        acc[idx[k]] += table[pos[k]]


if _numba is not None:  # pragma: no cover - requires the [kernel] extra
    _jit = _numba.njit(cache=True, fastmath=False)
    gather_step = _jit(_gather_step_loop)
    monitor_codes = _jit(_monitor_codes_loop)
    futility_cut = _jit(_futility_cut_loop)
    gather_add = _jit(_gather_add_loop)
else:
    gather_step = _gather_step_numpy
    monitor_codes = _monitor_codes_numpy
    futility_cut = _futility_cut_numpy
    gather_add = _gather_add_numpy

# Docstrings for the API reference regardless of the tier bound above.
gather_step.__doc__ = _gather_step_numpy.__doc__
monitor_codes.__doc__ = _monitor_codes_numpy.__doc__
futility_cut.__doc__ = _futility_cut_numpy.__doc__
gather_add.__doc__ = _gather_add_numpy.__doc__


# ----------------------------------------------------------------------
# Weight tables and pair log-probabilities
# ----------------------------------------------------------------------


def flat_pair_log_probs(
    chain: DTMC, sources: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """``log P(sources[k] → targets[k])`` under *chain*, ``-inf`` when absent.

    One vectorized gather against the (dense or CSR) transition matrix —
    the array replacement for per-pair
    :meth:`~repro.core.dtmc.DTMC.probability` lookups.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.size == 0:
        return np.zeros(0, dtype=np.float64)
    if chain.is_sparse:
        matrix = chain.transitions.tocsr()
        probs = np.asarray(matrix[sources, targets], dtype=np.float64).ravel()
    else:
        probs = np.asarray(chain.transitions, dtype=np.float64)[sources, targets]
    with np.errstate(divide="ignore"):
        return np.log(probs)


def entry_weight_logs(
    n_states: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    weight_chain: DTMC,
    state_map: "np.ndarray | None" = None,
) -> np.ndarray:
    """Per-CSR-entry ``log a_ij`` table for fused weight accumulation.

    For every entry of the simulated chain's CSR arrays, the log
    probability of the *same* transition under *weight_chain* (the IS
    numerator chain ``A``), with *state_map* optionally projecting
    simulated states onto weight-chain states first (the unrolled
    time-dependent proposal maps ``t·n + s`` back to ``s``). Entries
    outside the weight chain's support are ``-inf``; the estimator raises
    the usual absolute-continuity error only if a *successful* trace
    gathers one.
    """
    row_of = np.repeat(np.arange(n_states, dtype=np.int64), np.diff(indptr))
    targets = np.asarray(indices, dtype=np.int64)
    if state_map is not None:
        return flat_pair_log_probs(weight_chain, state_map[row_of], state_map[targets])
    return flat_pair_log_probs(weight_chain, row_of, targets)


# ----------------------------------------------------------------------
# Array-native per-trace transition counts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TraceCounts:
    """Per-trace transition counts of a batch, as flat COO arrays.

    The array-native replacement for a ``list[TransitionCounts | None]``:
    entry ``e`` says trace ``trace_ids[e]`` took transition
    ``sources[e] → targets[e]`` exactly ``counts[e]`` times. Entries are
    sorted by ``(trace, source·n_states + target)`` — the aggregation
    order of the engines' run-length encoding — and ``kept`` marks which
    traces carry tables at all (mirroring ``count_mode="satisfied"``: a
    kept trace with no entries is a valid zero-transition table, an
    unkept trace has no table).
    """

    n_traces: int
    n_states: int
    kept: np.ndarray
    trace_ids: np.ndarray
    sources: np.ndarray
    targets: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_step_keys(
        cls,
        n_traces: int,
        n_states: int,
        kept: np.ndarray,
        step_traces: "list[np.ndarray]",
        step_keys: "list[np.ndarray]",
    ) -> "TraceCounts":
        """Aggregate per-step flat ``source·n + target`` keys into counts.

        One ``lexsort`` plus a run-length encoding over everything the
        lockstep loop recorded — the run lengths are exactly the
        ``n_ij`` of Equation (1). Entries of traces outside *kept* are
        dropped.
        """
        if step_traces:
            traces = np.concatenate(step_traces)
            keys = np.concatenate(step_keys)
            sel = kept[traces]
            traces, keys = traces[sel], keys[sel]
        else:
            traces = np.zeros(0, dtype=np.int64)
            keys = np.zeros(0, dtype=np.int64)
        if traces.size:
            order = np.lexsort((keys, traces))
            traces, keys = traces[order], keys[order]
            new_pair = np.empty(traces.size, dtype=bool)
            new_pair[0] = True
            new_pair[1:] = (traces[1:] != traces[:-1]) | (keys[1:] != keys[:-1])
            starts = np.flatnonzero(new_pair)
            run_lengths = np.diff(np.append(starts, traces.size))
            traces, keys = traces[starts], keys[starts]
        else:
            run_lengths = np.zeros(0, dtype=np.int64)
        sources, targets = np.divmod(keys, n_states)
        return cls(
            n_traces=int(n_traces),
            n_states=int(n_states),
            kept=np.asarray(kept, dtype=bool),
            trace_ids=traces,
            sources=sources,
            targets=targets,
            counts=run_lengths.astype(np.int64),
        )

    @property
    def n_entries(self) -> int:
        """Number of distinct ``(trace, transition)`` pairs."""
        return int(self.trace_ids.shape[0])

    def select(self, trace_indices: np.ndarray) -> "TraceCounts":
        """Restrict to *trace_indices* (ascending), renumbering traces.

        Trace ``trace_indices[k]`` becomes trace ``k`` of the result; all
        selected traces are marked kept (selection is how the estimator
        extracts the successful traces, which by construction are).
        """
        trace_indices = np.asarray(trace_indices, dtype=np.int64)
        mapping = np.full(self.n_traces, -1, dtype=np.int64)
        mapping[trace_indices] = np.arange(trace_indices.size, dtype=np.int64)
        new_ids = mapping[self.trace_ids]
        sel = new_ids >= 0
        return TraceCounts(
            n_traces=int(trace_indices.size),
            n_states=self.n_states,
            kept=np.ones(trace_indices.size, dtype=bool),
            trace_ids=new_ids[sel],
            sources=self.sources[sel],
            targets=self.targets[sel],
            counts=self.counts[sel],
        )

    def map_states(self, state_map: np.ndarray, n_states: int) -> "TraceCounts":
        """Project counts through ``state → state_map[state]``.

        Pairs that collide after projection are re-aggregated (their
        counts summed), keeping the sorted ``(trace, key)`` entry order
        invariant. This is the array form of
        :meth:`~repro.importance.bounded.UnrolledProposal.project_counts`.
        """
        state_map = np.asarray(state_map, dtype=np.int64)
        sources = state_map[self.sources]
        targets = state_map[self.targets]
        keys = sources * np.int64(n_states) + targets
        traces = self.trace_ids
        order = np.lexsort((keys, traces))
        traces, keys, counts = traces[order], keys[order], self.counts[order]
        if traces.size:
            new_pair = np.empty(traces.size, dtype=bool)
            new_pair[0] = True
            new_pair[1:] = (traces[1:] != traces[:-1]) | (keys[1:] != keys[:-1])
            group = np.cumsum(new_pair) - 1
            starts = np.flatnonzero(new_pair)
            summed = np.bincount(group, weights=counts.astype(np.float64))
            traces, keys = traces[starts], keys[starts]
            counts = summed.astype(np.int64)
        new_sources, new_targets = np.divmod(keys, np.int64(n_states))
        return TraceCounts(
            n_traces=self.n_traces,
            n_states=int(n_states),
            kept=self.kept,
            trace_ids=traces,
            sources=new_sources,
            targets=new_targets,
            counts=counts,
        )

    @staticmethod
    def concatenate(chunks: "list[TraceCounts]") -> "TraceCounts":
        """Concatenate batches along the trace axis (shard merging)."""
        if not chunks:
            raise EstimationError("no TraceCounts chunks to concatenate")
        if len(chunks) == 1:
            return chunks[0]
        n_states = chunks[0].n_states
        for chunk in chunks:
            if chunk.n_states != n_states:
                raise EstimationError("cannot concatenate counts over different chains")
        offsets = np.cumsum([0] + [c.n_traces for c in chunks[:-1]])
        return TraceCounts(
            n_traces=sum(c.n_traces for c in chunks),
            n_states=n_states,
            kept=np.concatenate([c.kept for c in chunks]),
            trace_ids=np.concatenate(
                [c.trace_ids + off for c, off in zip(chunks, offsets)]
            ),
            sources=np.concatenate([c.sources for c in chunks]),
            targets=np.concatenate([c.targets for c in chunks]),
            counts=np.concatenate([c.counts for c in chunks]),
        )

    def trace_log_probs(self, chain: DTMC) -> np.ndarray:
        """Per-trace ``Σ n_ij log P_chain(i → j)`` (length ``n_traces``).

        The IS numerator of every trace in one gather + one ``bincount``;
        traces using a transition outside *chain*'s support get ``-inf``
        (the caller decides whether that is an error). Kept traces with
        no entries contribute an empty product, i.e. ``0.0``.
        """
        if self.n_entries == 0:
            return np.zeros(self.n_traces, dtype=np.float64)
        logs = flat_pair_log_probs(chain, self.sources, self.targets)
        terms = self.counts.astype(np.float64) * logs
        return np.bincount(
            self.trace_ids, weights=terms, minlength=self.n_traces
        ).astype(np.float64)

    def to_tables(self) -> "list[TransitionCounts | None]":
        """Materialize classic per-trace dict tables (Table I/II outputs).

        Kept traces get a :class:`~repro.core.paths.TransitionCounts`
        (possibly empty), unkept traces ``None`` — and pairs enter each
        dict in sorted-key order, exactly as the vectorized backend's
        run-length aggregation fills them, so dict equality *and*
        iteration order match across backends.
        """
        tables: "list[TransitionCounts | None]" = [None] * self.n_traces
        for k in np.flatnonzero(self.kept).tolist():
            tables[k] = TransitionCounts()
        if self.n_entries:
            trace_ids = self.trace_ids.tolist()
            pairs = list(zip(self.sources.tolist(), self.targets.tolist()))
            counts = self.counts.tolist()
            new_trace = np.empty(self.trace_ids.size, dtype=bool)
            new_trace[0] = True
            new_trace[1:] = self.trace_ids[1:] != self.trace_ids[:-1]
            bounds = np.append(np.flatnonzero(new_trace), self.trace_ids.size).tolist()
            for a, b in zip(bounds[:-1], bounds[1:]):
                table = tables[trace_ids[a]]
                assert table is not None
                table.counts.update(dict(zip(pairs[a:b], counts[a:b])))
        return tables
