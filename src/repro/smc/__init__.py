"""Statistical model checking: simulation, estimation, sequential testing."""

from repro.smc.bayes import (
    BayesianResult,
    BetaPosterior,
    bayes_factor_test,
    bayesian_estimate,
)
from repro.smc.estimators import monte_carlo_estimate
from repro.smc.intervals import (
    bernoulli_ci,
    chernoff_ci,
    normal_ci,
    normal_quantile,
    okamoto_epsilon,
    okamoto_sample_size,
    required_samples_relative_error,
    wilson_ci,
)
from repro.smc.results import (
    BatchSummary,
    ConfidenceInterval,
    EstimationResult,
    TraceRecord,
)
from repro.smc.engine import (
    BACKEND_NAMES,
    CompiledChain,
    CompiledCSR,
    EnsembleResult,
    KernelBackend,
    SequentialBackend,
    SimulationBackend,
    SimulationPlan,
    VectorizedBackend,
    iter_chunks,
    make_plan,
    resolve_backend,
)
from repro.smc.kernels import TraceCounts, kernel_runtime_info
from repro.smc.parallel import ParallelBackend, resolve_workers
from repro.smc.simulator import TraceSampler
from repro.smc.sprt import SPRTResult, sprt

__all__ = [
    "BACKEND_NAMES",
    "BatchSummary",
    "BayesianResult",
    "BetaPosterior",
    "CompiledChain",
    "CompiledCSR",
    "ConfidenceInterval",
    "EnsembleResult",
    "EstimationResult",
    "KernelBackend",
    "ParallelBackend",
    "SPRTResult",
    "SequentialBackend",
    "SimulationBackend",
    "SimulationPlan",
    "TraceCounts",
    "TraceRecord",
    "TraceSampler",
    "VectorizedBackend",
    "make_plan",
    "resolve_backend",
    "bayes_factor_test",
    "bayesian_estimate",
    "bernoulli_ci",
    "chernoff_ci",
    "iter_chunks",
    "kernel_runtime_info",
    "monte_carlo_estimate",
    "normal_ci",
    "normal_quantile",
    "okamoto_epsilon",
    "okamoto_sample_size",
    "required_samples_relative_error",
    "resolve_workers",
    "sprt",
    "wilson_ci",
]
