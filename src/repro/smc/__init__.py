"""Statistical model checking: simulation, estimation, sequential testing."""

from repro.smc.bayes import (
    BayesianResult,
    BetaPosterior,
    bayes_factor_test,
    bayesian_estimate,
)
from repro.smc.estimators import monte_carlo_estimate
from repro.smc.intervals import (
    bernoulli_ci,
    chernoff_ci,
    normal_ci,
    normal_quantile,
    okamoto_epsilon,
    okamoto_sample_size,
    required_samples_relative_error,
    wilson_ci,
)
from repro.smc.results import (
    BatchSummary,
    ConfidenceInterval,
    EstimationResult,
    TraceRecord,
)
from repro.smc.simulator import CompiledChain, TraceSampler
from repro.smc.sprt import SPRTResult, sprt

__all__ = [
    "BatchSummary",
    "BayesianResult",
    "BetaPosterior",
    "CompiledChain",
    "ConfidenceInterval",
    "EstimationResult",
    "SPRTResult",
    "TraceRecord",
    "TraceSampler",
    "bayes_factor_test",
    "bayesian_estimate",
    "bernoulli_ci",
    "chernoff_ci",
    "monte_carlo_estimate",
    "normal_ci",
    "normal_quantile",
    "okamoto_epsilon",
    "okamoto_sample_size",
    "required_samples_relative_error",
    "sprt",
    "wilson_ci",
]
