"""Wald's sequential probability ratio test (SPRT).

The paper (Section I) notes SMC "may use alternative efficient techniques,
such as ... hypothesis testing [Wald 1945] to decide with specified
confidence whether the probability of a property exceeds a given threshold".
This module implements the classical SPRT over Bernoulli trace verdicts:

* ``H0: γ >= p0``  (accepted ⇒ "probability at least the threshold")
* ``H1: γ <= p1``  with ``p1 < p0`` an indifference region around θ.

The random walk ``log Λ`` moves by ``log(p1/p0)`` on success and
``log((1−p1)/(1−p0))`` on failure; it stops at ``log(B) = log(β/(1−α))``
(accept H0) or ``log(A) = log((1−β)/α)`` (accept H1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.dtmc import DTMC
from repro.errors import EstimationError
from repro.properties.logic import Formula
from repro.smc.engine import DEFAULT_CHUNK_SIZE, iter_verdicts
from repro.smc.simulator import TraceSampler
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class SPRTResult:
    """Outcome of a sequential test."""

    #: ``"accept"`` (γ >= θ), ``"reject"`` (γ < θ) or ``"undecided"``.
    decision: str
    n_samples: int
    n_satisfied: int
    threshold: float
    indifference: float
    alpha: float
    beta: float

    @property
    def accepted(self) -> bool:
        """True when H0 (γ at least the threshold) was accepted."""
        return self.decision == "accept"


def sprt(
    model: DTMC,
    formula: Formula,
    threshold: float,
    indifference: float,
    alpha: float = 0.05,
    beta: float = 0.05,
    rng: np.random.Generator | int | None = None,
    max_samples: int = 10_000_000,
    max_steps: int | None = None,
    backend: str | None = "auto",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SPRTResult:
    """Sequentially test ``P(model ⊨ formula) >= threshold``.

    Traces are drawn from the simulation engine in batches of *chunk_size*
    and their verdicts consumed one by one, so the vectorized backend's
    throughput is available while the walk still stops at exactly the
    same sample index a one-trace-at-a-time test would (surplus traces of
    the final chunk are discarded).

    Parameters
    ----------
    threshold, indifference:
        The test distinguishes ``γ >= threshold + indifference`` from
        ``γ <= threshold − indifference``; both must stay inside (0, 1).
    alpha, beta:
        Type I and type II error bounds.
    max_samples:
        Hard cap; if reached, the decision is ``"undecided"``.
    backend, chunk_size:
        Simulation backend selector and the batch size drawn per round.
    """
    p0 = threshold + indifference
    p1 = threshold - indifference
    if not 0.0 < p1 < p0 < 1.0:
        raise EstimationError(
            f"invalid indifference region: p1={p1}, p0={p0} must satisfy 0 < p1 < p0 < 1"
        )
    if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
        raise EstimationError("alpha and beta must be in (0, 1)")
    generator = ensure_rng(rng)
    sampler = TraceSampler(
        model, formula, max_steps=max_steps, count_mode="none", backend=backend
    )

    log_accept_h1 = math.log((1.0 - beta) / alpha)
    log_accept_h0 = math.log(beta / (1.0 - alpha))
    step_success = math.log(p1 / p0)
    step_failure = math.log((1.0 - p1) / (1.0 - p0))

    log_ratio = 0.0
    n_samples = 0
    n_satisfied = 0
    for satisfied in iter_verdicts(sampler, max_samples, generator, chunk_size):
        n_samples += 1
        n_satisfied += int(satisfied)
        log_ratio += step_success if satisfied else step_failure
        if log_ratio >= log_accept_h1:
            return SPRTResult(
                "reject", n_samples, n_satisfied, threshold, indifference, alpha, beta
            )
        if log_ratio <= log_accept_h0:
            return SPRTResult(
                "accept", n_samples, n_satisfied, threshold, indifference, alpha, beta
            )
    return SPRTResult(
        "undecided", max_samples, n_satisfied, threshold, indifference, alpha, beta
    )
