"""Crude Monte Carlo estimation (Section II-C).

``γ̂_N = (1/N) Σ z(ω_i)`` over independently sampled traces, with the
normal-approximation confidence interval
``γ̂ ± Φ⁻¹(1 − δ/2) sqrt(γ̂(1 − γ̂)/N)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dtmc import DTMC
from repro.errors import EstimationError
from repro.properties.logic import Formula
from repro.smc.intervals import normal_ci
from repro.smc.results import EstimationResult
from repro.smc.simulator import TraceSampler
from repro.util.rng import ensure_rng


def monte_carlo_estimate(
    model: DTMC,
    formula: Formula,
    n_samples: int,
    rng: np.random.Generator | int | None = None,
    confidence: float = 0.95,
    max_steps: int | None = None,
    initial_state: int | None = None,
    backend: str | None = "auto",
    workers: "int | str | None" = None,
) -> EstimationResult:
    """Estimate ``P(model ⊨ formula)`` by crude Monte Carlo.

    Returns an :class:`~repro.smc.results.EstimationResult` whose interval
    is the normal-approximation CI of Section II-C. For rare properties
    this needs ``N ≈ 100/γ`` samples for a 10 % relative error — the
    motivation for importance sampling. Sampling runs as one batch on the
    selected simulation *backend* (vectorized whenever the property
    compiles to masks); *workers* shards the batch across a process pool.
    """
    if n_samples <= 0:
        raise EstimationError("n_samples must be positive")
    generator = ensure_rng(rng)
    sampler = TraceSampler(
        model,
        formula,
        max_steps=max_steps,
        count_mode="none",
        initial_state=initial_state,
        backend=backend,
        workers=workers,
    )
    batch = sampler.sample_ensemble(n_samples, generator)
    n_satisfied = batch.n_satisfied
    n_undecided = batch.n_undecided
    estimate = n_satisfied / n_samples
    std_dev = math.sqrt(estimate * (1.0 - estimate))
    return EstimationResult(
        estimate=estimate,
        std_dev=std_dev,
        n_samples=n_samples,
        interval=normal_ci(estimate, std_dev, n_samples, confidence),
        n_satisfied=n_satisfied,
        n_undecided=n_undecided,
        method="monte-carlo",
    )
