"""Result records for statistical estimation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.paths import TransitionCounts


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval ``[low, high]`` at level ``1 − δ``."""

    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty interval: [{self.low}, {self.high}]")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")

    @property
    def width(self) -> float:
        """Full width ``high − low``."""
        return self.high - self.low

    @property
    def half_width(self) -> float:
        """The absolute error (half the interval width)."""
        return self.width / 2.0

    @property
    def midpoint(self) -> float:
        """Mid value of the interval (reported in the paper's Table II)."""
        return (self.low + self.high) / 2.0

    def contains(self, value: float) -> bool:
        """True when *value* lies inside the interval (inclusive).

        A relative tolerance of a few ULPs is applied so that degenerate
        (zero-width) intervals — e.g. the perfect-IS interval of Fig. 1c —
        compare as containing the value they numerically equal.
        """
        slack = 1e-12 * max(abs(self.low), abs(self.high), abs(value))
        return self.low - slack <= value <= self.high + slack

    def intersects(self, other: "ConfidenceInterval") -> bool:
        """True when the two intervals overlap."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"[{self.low:.6g}, {self.high:.6g}] @ {self.confidence:.0%}"


@dataclass(frozen=True)
class EstimationResult:
    """Outcome of a Monte Carlo or importance-sampling estimation.

    Attributes
    ----------
    estimate:
        The point estimate ``γ̂``.
    std_dev:
        The empirical standard deviation ``σ̂`` of the per-trace summands.
    n_samples:
        Number of traces used.
    interval:
        The ``(1 − δ)`` confidence interval.
    n_satisfied:
        Number of traces satisfying the property.
    n_undecided:
        Traces whose verdict was still open at the step cap (treated as not
        satisfying; should be zero on well-posed models).
    method:
        Short identifier, e.g. ``"monte-carlo"`` or ``"importance-sampling"``.
    ess:
        Effective sample size of the importance weights,
        ``(Σ L_k)² / Σ L_k²`` — the standard IS health diagnostic. ``None``
        for unweighted (crude Monte Carlo / Bayesian) estimates, where it
        would equal ``n_satisfied``.
    """

    estimate: float
    std_dev: float
    n_samples: int
    interval: ConfidenceInterval
    n_satisfied: int
    n_undecided: int = 0
    method: str = "monte-carlo"
    ess: float | None = None

    @property
    def std_error(self) -> float:
        """Standard error ``σ̂ / sqrt(N)``."""
        return self.std_dev / (self.n_samples ** 0.5) if self.n_samples else float("nan")

    def relative_error(self) -> float:
        """Absolute error divided by the estimate (Section III of the paper)."""
        if self.estimate == 0:
            return float("inf")
        return self.interval.half_width / self.estimate


@dataclass
class TraceRecord:
    """Per-trace record produced by the samplers.

    ``counts`` is only populated when the caller asked for count tables
    (Algorithm 1 keeps them for successful traces only — the table of a
    failed trace contributes ``z·L = 0``). ``log_proposal`` is the log
    probability of the trace under the *sampling* distribution; for
    importance sampling this is the denominator of the likelihood ratio.
    """

    satisfied: bool
    length: int
    counts: TransitionCounts | None = None
    log_proposal: float = 0.0
    decided: bool = True


@dataclass
class BatchSummary:
    """Aggregate of a batch of sampled traces."""

    n_samples: int = 0
    n_satisfied: int = 0
    n_undecided: int = 0
    total_length: int = 0
    records: list[TraceRecord] = field(default_factory=list)

    @property
    def mean_length(self) -> float:
        """Average trace length (transitions)."""
        return self.total_length / self.n_samples if self.n_samples else 0.0
