"""The illustrative example of Fig. 1 and Sections III-B / VI-A.

A four-state chain: from ``s0``, a rare transition ``a`` leads towards the
goal ``s2`` through ``s1`` (which succeeds with probability ``c`` or falls
back to ``s0``); the complementary mass ``b = 1 − a`` leads to the absorbing
failure state ``s3``. The probability of reaching ``s2`` from ``s0`` has
the closed form

    γ = a·c / (1 − a·d),          d = 1 − c.

Paper parameters: true ``a = 1e-4, c = 0.05`` (γ ≈ 5.005e-6); learnt
``â = 3e-4, ĉ = 0.0498`` (γ(Â) = 1.4944e-5); intervals
``a ∈ [0.5, 5.5]×10⁻⁴`` and ``c ∈ [0.0493, 0.0503]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.importance.zero_variance import zero_variance_proposal
from repro.models.base import CaseStudy
from repro.properties.logic import Atom, Eventually, Formula

#: True parameters of the hidden system (Section III-B).
A_TRUE = 1e-4
C_TRUE = 0.05
#: The learnt point estimates (Section VI-A).
A_HAT = 3e-4
C_HAT = 0.0498
#: The learning margins: a ∈ [0.5, 5.5]e-4, c ∈ [0.0493, 0.0503].
A_EPSILON = 2.5e-4
C_EPSILON = 5e-4

#: State indices.
S0, S1, S2, S3 = 0, 1, 2, 3


def illustrative_chain(a: float = A_TRUE, c: float = C_TRUE) -> DTMC:
    """The DTMC of Fig. 1a with parameters *a* and *c*."""
    if not 0.0 < a < 1.0 or not 0.0 < c < 1.0:
        raise ValueError("parameters must lie strictly inside (0, 1)")
    b, d = 1.0 - a, 1.0 - c
    matrix = np.array(
        [
            [0.0, a, 0.0, b],
            [d, 0.0, c, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ]
    )
    labels = {"init": [S0], "goal": [S2], "fail": [S3]}
    return DTMC(matrix, S0, labels, state_names=("s0", "s1", "s2", "s3"))


def exact_probability(a: float = A_TRUE, c: float = C_TRUE) -> float:
    """Closed-form γ = a·c/(1 − a·d) of reaching ``s2`` from ``s0``."""
    d = 1.0 - c
    return a * c / (1.0 - a * d)


def reach_goal_formula() -> Formula:
    """The property φ: eventually reach ``s2``."""
    return Eventually(Atom("goal"))


def illustrative_imc(
    a_hat: float = A_HAT,
    c_hat: float = C_HAT,
    a_epsilon: float = A_EPSILON,
    c_epsilon: float = C_EPSILON,
) -> IMC:
    """The IMC of Fig. 1b, centred on the learnt chain.

    The two parametrised transitions (and their complements, as in
    Fig. 1b's ``[b̂ ± ε_â]``) get interval margins; the Dirac rows of the
    absorbing states stay exact.
    """
    center = illustrative_chain(a_hat, c_hat)
    epsilon = np.zeros((4, 4))
    epsilon[S0, S1] = a_epsilon
    epsilon[S0, S3] = a_epsilon
    epsilon[S1, S2] = c_epsilon
    epsilon[S1, S0] = c_epsilon
    return IMC.from_center(center, epsilon)


def perfect_proposal(a: float = A_HAT, c: float = C_HAT) -> DTMC:
    """The perfect IS distribution w.r.t. the chain at ``(a, c)``.

    This is Fig. 1c: under it every path reaches the goal and carries the
    constant likelihood ratio γ — the distribution whose degenerate
    confidence interval motivates IMCIS.
    """
    chain = illustrative_chain(a, c)
    return zero_variance_proposal(chain, reach_goal_formula())


@dataclass(frozen=True)
class IllustrativeParameters:
    """Bundle of the parameters defining an illustrative-example study."""

    a_true: float = A_TRUE
    c_true: float = C_TRUE
    a_hat: float = A_HAT
    c_hat: float = C_HAT
    a_epsilon: float = A_EPSILON
    c_epsilon: float = C_EPSILON


def make_study(
    params: IllustrativeParameters = IllustrativeParameters(),
    n_samples: int = 10_000,
    confidence: float = 0.95,
) -> CaseStudy:
    """Prepare the Section VI-A experiment configuration."""
    true_chain = illustrative_chain(params.a_true, params.c_true)
    imc = illustrative_imc(params.a_hat, params.c_hat, params.a_epsilon, params.c_epsilon)
    return CaseStudy(
        name="illustrative",
        imc=imc,
        formula=reach_goal_formula(),
        proposal=perfect_proposal(params.a_hat, params.c_hat),
        true_chain=true_chain,
        gamma_true=exact_probability(params.a_true, params.c_true),
        gamma_center=exact_probability(params.a_hat, params.c_hat),
        n_samples=n_samples,
        confidence=confidence,
    )
