"""Case-study registry: every benchmark family, resolvable by name.

The paper validates IMCIS on three case studies; the estimator stack is
model-agnostic. This module turns the per-module ``make_study`` factories
into a uniform, named collection so that experiments, benchmarks and the
CLI resolve studies by name instead of ad-hoc imports — and so the
cross-study experiment matrix (:mod:`repro.experiments.matrix`) can fan
over *all* of them.

Three shapes are unified:

* factories returning a bare :class:`~repro.models.base.CaseStudy`
  (most families);
* factories returning a ``(CaseStudy, UnrolledProposal)`` pair (SWaT,
  whose sampling is time-dependent);
* seeded factories (SWaT learns its model from simulated logs and takes
  an ``rng``) — registered with ``seeded=True`` so callers can thread a
  root seed through without knowing which studies need one.

The module-level :data:`REGISTRY` holds the default catalogue: the three
paper studies, the large repair model (tagged ``"slow"``) and four
parametric IMC families. Fresh, empty registries can be constructed for
testing or for private study sets.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.importance.bounded import UnrolledProposal
from repro.models import (
    birth_death,
    gamblers_ruin,
    illustrative,
    knuth_yao,
    repair_group,
    repair_large,
    swat,
    tandem_repair,
)
from repro.models.base import CaseStudy

#: Tag of studies too expensive for quick/smoke runs.
SLOW_TAG = "slow"


@dataclass(frozen=True)
class PreparedStudy:
    """A built study plus its optional time-dependent sampling proposal."""

    study: CaseStudy
    unrolled_proposal: UnrolledProposal | None = None

    @property
    def name(self) -> str:
        """The study's report name."""
        return self.study.name

    def as_pair(self) -> "tuple[CaseStudy, UnrolledProposal | None]":
        """The ``(study, unrolled_proposal)`` pair ``run_table2`` consumes."""
        return (self.study, self.unrolled_proposal)


@dataclass(frozen=True)
class StudySpec:
    """A registered case-study family.

    Attributes
    ----------
    name:
        Registry key (and the expected ``CaseStudy.name``).
    factory:
        The parametric ``make_study(**params)`` callable. May return a
        :class:`CaseStudy` or a ``(CaseStudy, UnrolledProposal)`` pair.
    description:
        One-line summary shown in listings.
    tags:
        Free-form markers; :data:`SLOW_TAG` excludes a study from quick
        matrix runs.
    quick_params:
        Factory overrides applied by quick/smoke runs (e.g. a smaller
        learning-log volume for SWaT).
    seeded:
        True when the factory accepts an ``rng`` keyword (model building
        itself is stochastic).
    """

    name: str
    factory: Callable[..., object]
    description: str = ""
    tags: frozenset[str] = frozenset()
    quick_params: Mapping[str, object] = field(default_factory=dict)
    seeded: bool = False

    def build(
        self, rng: object | None = None, quick: bool = False, **params: object
    ) -> PreparedStudy:
        """Instantiate the study.

        Parameters
        ----------
        rng : Generator, int or None, optional
            Forwarded to seeded factories; ignored otherwise.
        quick : bool, optional
            Apply :attr:`quick_params` underneath any explicit *params*.
        **params
            Factory keyword overrides (each family is parametric).

        Returns
        -------
        PreparedStudy
            The built study plus its optional unrolled proposal.

        Raises
        ------
        ModelError
            When the factory does not produce a :class:`CaseStudy`.
        """
        merged: dict[str, object] = dict(self.quick_params) if quick else {}
        merged.update(params)
        if self.seeded and rng is not None:
            merged.setdefault("rng", rng)
        built = self.factory(**merged)
        if isinstance(built, PreparedStudy):
            prepared = built
        elif isinstance(built, tuple):
            study, unrolled = built
            prepared = PreparedStudy(study, unrolled)
        else:
            prepared = PreparedStudy(built)  # type: ignore[arg-type]
        if not isinstance(prepared.study, CaseStudy):
            raise ModelError(
                f"factory of study {self.name!r} returned {type(prepared.study).__name__}, "
                "expected a CaseStudy"
            )
        return prepared


class StudyRegistry:
    """A named, ordered collection of case-study families."""

    def __init__(self) -> None:
        self._specs: dict[str, StudySpec] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., object],
        description: str = "",
        tags: "tuple[str, ...] | frozenset[str]" = (),
        quick_params: Mapping[str, object] | None = None,
        seeded: bool = False,
    ) -> StudySpec:
        """Add a study family under *name*.

        Parameters
        ----------
        name : str
            Registry key (and the expected ``CaseStudy.name``).
        factory : callable
            Parametric ``make_study(**params)`` returning a
            :class:`CaseStudy`, a ``(CaseStudy, UnrolledProposal)`` pair
            or a :class:`PreparedStudy`.
        description : str, optional
            One-line summary shown in listings.
        tags : tuple or frozenset of str, optional
            Free-form markers; :data:`SLOW_TAG` excludes a study from
            quick runs.
        quick_params : Mapping, optional
            Factory overrides applied by quick/smoke runs.
        seeded : bool, optional
            True when the factory accepts an ``rng`` keyword.

        Returns
        -------
        StudySpec
            The spec as registered.

        Raises
        ------
        ModelError
            When *name* is already registered.
        """
        if name in self._specs:
            raise ModelError(f"study {name!r} is already registered")
        spec = StudySpec(
            name=name,
            factory=factory,
            description=description,
            tags=frozenset(tags),
            quick_params=dict(quick_params or {}),
            seeded=seeded,
        )
        self._specs[name] = spec
        return spec

    def get(self, name: str) -> StudySpec:
        """The spec registered under *name*.

        Parameters
        ----------
        name : str
            Registry key to resolve.

        Returns
        -------
        StudySpec
            The registered spec.

        Raises
        ------
        ModelError
            When *name* is unknown (the message lists known names).
        """
        try:
            return self._specs[name]
        except KeyError:
            raise ModelError(
                f"unknown study {name!r}; registered: {self.list_studies()}"
            ) from None

    def list_studies(self, tag: str | None = None, exclude_tag: str | None = None) -> list[str]:
        """Registered names, in registration order, optionally filtered.

        Parameters
        ----------
        tag : str, optional
            Keep only studies carrying this tag.
        exclude_tag : str, optional
            Drop studies carrying this tag.

        Returns
        -------
        list of str
            Matching registry keys, in registration order.
        """
        names = []
        for name, spec in self._specs.items():
            if tag is not None and tag not in spec.tags:
                continue
            if exclude_tag is not None and exclude_tag in spec.tags:
                continue
            names.append(name)
        return names

    def quick_studies(self) -> list[str]:
        """The names quick/smoke runs cover (everything not tagged slow)."""
        return self.list_studies(exclude_tag=SLOW_TAG)

    def make_study(
        self, name: str, rng: object | None = None, quick: bool = False, **params: object
    ) -> PreparedStudy:
        """Build the study registered under *name*.

        Parameters
        ----------
        name : str
            Registry key to resolve.
        rng : Generator, int or None, optional
            Forwarded to seeded factories; ignored otherwise.
        quick : bool, optional
            Apply the spec's quick parameters underneath *params*.
        **params
            Factory keyword overrides.

        Returns
        -------
        PreparedStudy
            The built study (see :meth:`StudySpec.build`).
        """
        return self.get(name).build(rng=rng, quick=quick, **params)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[StudySpec]:
        return iter(self._specs.values())


def register_default_studies(registry: StudyRegistry) -> StudyRegistry:
    """Register the full default catalogue onto *registry*."""
    registry.register(
        "illustrative",
        illustrative.make_study,
        description="4-state example of Fig. 1 with the perfect IS proposal",
    )
    registry.register(
        "group-repair",
        repair_group.make_study,
        description="125-state grouped-repair benchmark (Section VI-B)",
    )
    registry.register(
        "large-repair",
        repair_large.make_study,
        description="40 320-state repair benchmark (Section VI-C)",
        tags=(SLOW_TAG,),
    )
    registry.register(
        "swat",
        swat.make_study,
        description="70-state SWaT surrogate, learnt from simulated logs (Section VI-D)",
        quick_params={"log_traces": 400, "log_steps": 600},
        seeded=True,
    )
    registry.register(
        "birth-death",
        birth_death.make_study,
        description="M/M/1/K busy-cycle overflow with interval service probability",
    )
    registry.register(
        "gamblers-ruin",
        gamblers_ruin.make_study,
        description="biased gambler's ruin with perturbed win probability",
    )
    registry.register(
        "knuth-yao",
        knuth_yao.make_study,
        description="Knuth-Yao die with an interval coin (rare six)",
    )
    registry.register(
        "tandem-repair",
        tandem_repair.make_study,
        description="tandem repair network scaling the repair family (64 states default)",
    )
    return registry


#: The default catalogue used by the CLI, the matrix and the benchmarks.
REGISTRY = register_default_studies(StudyRegistry())
