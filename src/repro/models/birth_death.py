"""Birth–death queue with an interval service probability.

The embedded jump chain of an M/M/1/K queue on the states ``0..K``
(queue occupancy): from the empty queue the first arrival always moves to
state 1, interior states move up with probability ``p`` (an arrival wins
the race against the server) and down with ``1 − p``, and the full queue
can only drain. The dependability property is the classic busy-cycle
overflow — starting from the empty queue, the buffer fills before the
system drains back to empty,

    P=? [ "init" & (X !"init" U "full") ],

whose probability has the gambler's-ruin closed form

    γ = (1 − r) / (1 − r^K),          r = (1 − p) / p

(``γ = 1/K`` at ``p = 1/2``). For the default ``p = 0.25, K = 10``,
``γ ≈ 3.39e-5`` — a rare event of the same magnitude as the paper's
repair studies. The IMC perturbs the service race: ``p ∈ [p̂ ± ε]`` on
every interior row, exactly the Section II-B construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.importance.zero_variance import zero_variance_proposal
from repro.models.base import CaseStudy
from repro.properties.logic import Formula
from repro.properties.parser import parse_property

#: Buffer capacity ``K`` (states ``0..K``).
CAPACITY = 10
#: True probability that an arrival beats the server at interior states.
P_TRUE = 0.25
#: The learnt point estimate and its margin: ``p ∈ [p̂ − ε, p̂ + ε]``.
P_HAT = 0.26
P_EPSILON = 0.02

#: The busy-cycle overflow property.
PROPERTY = 'P=? [ "init" & (X !"init" U "full") ]'


def birth_death_chain(p: float = P_TRUE, capacity: int = CAPACITY) -> DTMC:
    """The embedded jump chain of the M/M/1/K queue at up-probability *p*."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie strictly inside (0, 1)")
    if capacity < 2:
        raise ValueError("capacity must be at least 2")
    n = capacity + 1
    matrix = np.zeros((n, n))
    matrix[0, 1] = 1.0
    for state in range(1, capacity):
        matrix[state, state + 1] = p
        matrix[state, state - 1] = 1.0 - p
    matrix[capacity, capacity - 1] = 1.0
    labels = {"init": [0], "full": [capacity]}
    names = [f"q{state}" for state in range(n)]
    return DTMC(matrix, 0, labels, state_names=names)


def exact_probability(p: float = P_TRUE, capacity: int = CAPACITY) -> float:
    """Closed-form γ of filling the buffer before draining back to empty."""
    if p == 0.5:
        return 1.0 / capacity
    r = (1.0 - p) / p
    return (1.0 - r) / (1.0 - r**capacity)


def overflow_formula() -> Formula:
    """``P=? [ "init" & (X !"init" U "full") ]``."""
    return parse_property(PROPERTY)


def birth_death_imc(
    p_hat: float = P_HAT,
    p_epsilon: float = P_EPSILON,
    capacity: int = CAPACITY,
) -> IMC:
    """The IMC ``[Â ± ε]``: the service race perturbed on every interior row."""
    center = birth_death_chain(p_hat, capacity)
    epsilon = np.zeros((capacity + 1, capacity + 1))
    for state in range(1, capacity):
        epsilon[state, state + 1] = p_epsilon
        epsilon[state, state - 1] = p_epsilon
    return IMC.from_center(center, epsilon)


def is_proposal(p_hat: float = P_HAT, capacity: int = CAPACITY, mixing: float = 0.0) -> DTMC:
    """Zero-variance IS proposal w.r.t. the learnt chain (see repair_group)."""
    chain = birth_death_chain(p_hat, capacity)
    return zero_variance_proposal(chain, overflow_formula(), mixing=mixing)


def make_study(
    p_true: float = P_TRUE,
    p_hat: float = P_HAT,
    p_epsilon: float = P_EPSILON,
    capacity: int = CAPACITY,
    n_samples: int = 10_000,
    confidence: float = 0.95,
    proposal_mixing: float = 0.2,
) -> CaseStudy:
    """Prepare the birth–death overflow study.

    ``proposal_mixing`` keeps the proposal deliberately imperfect so the
    IS interval has non-degenerate width (see ``repair_group.make_study``).
    """
    true_chain = birth_death_chain(p_true, capacity)
    imc = birth_death_imc(p_hat, p_epsilon, capacity)
    return CaseStudy(
        name="birth-death",
        imc=imc,
        formula=overflow_formula(),
        proposal=is_proposal(p_hat, capacity, mixing=proposal_mixing),
        true_chain=true_chain,
        gamma_true=exact_probability(p_true, capacity),
        gamma_center=exact_probability(p_hat, capacity),
        n_samples=n_samples,
        confidence=confidence,
    )
