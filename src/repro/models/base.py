"""Common shape of a prepared case study.

Every benchmark module exposes a ``make_study`` returning a
:class:`CaseStudy`: the IMC, the property, the IS proposal, the ground-truth
chain (when one exists) and the exact probabilities the coverage experiments
compare against. The experiment harness and the benchmarks consume only
this interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.properties.logic import Formula


@dataclass
class CaseStudy:
    """A fully prepared experimental configuration.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``"illustrative"``).
    imc:
        The interval chain ``[Â]`` IMCIS optimises over.
    formula:
        The property ``φ``.
    proposal:
        The importance-sampling distribution ``B``.
    true_chain:
        The exact system ``A`` (used to *sample nothing* — only to define
        the coverage target γ). ``None`` when no ground truth exists.
    gamma_true:
        Exact ``γ(A)`` from numerical analysis / closed form.
    gamma_center:
        Exact ``γ(Â)`` of the IMC's centre chain.
    n_samples:
        The paper's sample size for this study (``N = 10 000`` throughout).
    confidence:
        Confidence level of the reported intervals.
    """

    name: str
    imc: IMC
    formula: Formula
    proposal: DTMC
    true_chain: DTMC | None
    gamma_true: float | None
    gamma_center: float
    n_samples: int = 10_000
    confidence: float = 0.95

    @property
    def center(self) -> DTMC:
        """The learnt chain ``Â`` at the centre of the IMC."""
        return self.imc.center
