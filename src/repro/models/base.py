"""Common shape of a prepared case study.

Every benchmark module exposes a ``make_study`` returning a
:class:`CaseStudy`: the IMC, the property, the IS proposal, the ground-truth
chain (when one exists) and the exact probabilities the coverage experiments
compare against. The experiment harness and the benchmarks consume only
this interface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import linalg
from repro.core.dtmc import DTMC, ROW_ATOL
from repro.core.imc import IMC
from repro.errors import ModelError
from repro.properties.logic import Formula


@dataclass
class CaseStudy:
    """A fully prepared experimental configuration.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``"illustrative"``).
    imc:
        The interval chain ``[Â]`` IMCIS optimises over.
    formula:
        The property ``φ``.
    proposal:
        The importance-sampling distribution ``B``.
    true_chain:
        The exact system ``A`` (used to *sample nothing* — only to define
        the coverage target γ). ``None`` when no ground truth exists.
    gamma_true:
        Exact ``γ(A)`` from numerical analysis / closed form.
    gamma_center:
        Exact ``γ(Â)`` of the IMC's centre chain.
    n_samples:
        The paper's sample size for this study (``N = 10 000`` throughout).
    confidence:
        Confidence level of the reported intervals.
    """

    name: str
    imc: IMC
    formula: Formula
    proposal: DTMC
    true_chain: DTMC | None
    gamma_true: float | None
    gamma_center: float
    n_samples: int = 10_000
    confidence: float = 0.95

    def __post_init__(self) -> None:
        """Reject studies with out-of-range probabilities or a broken proposal.

        The exact probabilities must be probabilities, and the proposal —
        the one distribution the experiments actually sample from — must
        be row-stochastic with entries in [0, 1] (the same CSR-friendly
        checks the DTMC constructor applies, re-run here because proposals
        can reach a study through validation-skipping paths such as
        ``with_labels``).
        """
        checks = (("gamma_true", self.gamma_true), ("gamma_center", self.gamma_center))
        for field_name, value in checks:
            if value is None:
                continue
            if not 0.0 <= value <= 1.0:
                raise ModelError(
                    f"{field_name} of study {self.name!r} must lie in [0, 1], got {value!r}"
                )
        linalg.check_entries_in_unit_interval(
            self.proposal.transitions, f"proposal of study {self.name!r}"
        )
        sums = linalg.row_sums(self.proposal.transitions)
        bad = np.flatnonzero(np.abs(sums - 1.0) > ROW_ATOL)
        if bad.size:
            state = int(bad[0])
            raise ModelError(
                f"proposal row {state} of study {self.name!r} sums to "
                f"{sums[state]!r}, expected 1"
            )

    @property
    def center(self) -> DTMC:
        """The learnt chain ``Â`` at the centre of the IMC."""
        return self.imc.center
