"""The group repair model (Section VI-B; Ridder's benchmark).

Three component types with 4 components each fail independently with rates
``((4−k)·α², (4−k)·α, (4−k)·α)`` and are repaired at rate 1 with priority
(type 1 before 2 before 3). Type 1 is repaired *as a group* once at least
two of its components are down; types 2 and 3 repair when no higher-priority
repair is active. The modelling-language source below is the paper's
appendix PRISM code, verbatim modulo whitespace — 125 states.

The dependability property: starting from the all-up state, all twelve
components fail before the system returns to the all-up state,

    P=? [ "init" & (X !"init" U "failure") ],

evaluated on the embedded jump chain (it only depends on the jump sequence).
For ``α = 0.1``, ``γ ≈ 1.18e-7``; for the learnt ``α̂ = 0.0995``,
``γ(Â) ≈ 1.12e-7`` (the paper reports 1.179e-7 and 1.117e-7).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.analysis.reachability import probability
from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.core.parametric import ParametricModel
from repro.importance.zero_variance import zero_variance_proposal
from repro.lang.builder import build_ctmc
from repro.models.base import CaseStudy
from repro.properties.logic import Formula
from repro.properties.parser import parse_property

#: The appendix model, verbatim (modulo whitespace).
PRISM_SOURCE = """
ctmc
const int n = 4;
const double alpha;
const double alpha2 = alpha*alpha;
const double mu = 1.0;

module type1
  state1 : [0..n] init 0;
  [] state1 < n  -> (n-state1)*alpha2 : (state1'=state1+1);
  [] state1 >= 2 -> mu : (state1'=0);
endmodule

module type2
  state2 : [0..n] init 0;
  [] state2 < n -> (n-state2)*alpha : (state2'=state2+1);
  [] state2 >= 2 & state1 < 2 -> mu : (state2'=0);
endmodule

module type3
  state3 : [0..n] init 0;
  [] state3 < n -> (n-state3)*alpha : (state3'=state3+1);
  [] state3 > 0 & state2 < 2 & state1 < 2 -> mu : (state3'=state3-1);
endmodule

label "failure" = state1 = n & state2 = n & state3 = n;
"""

#: The paper's parameter values (Section VI-B).
ALPHA_TRUE = 0.1
ALPHA_HAT = 0.0995
#: The learnt 99.9 % confidence interval for α.
ALPHA_INTERVAL = (0.09852, 0.10048)

#: The dependability property.
PROPERTY = 'P=? [ "init" & (X !"init" U "failure") ]'


def embedded_chain(alpha: float = ALPHA_TRUE) -> DTMC:
    """The 125-state embedded jump chain at failure rate *alpha*."""
    return build_ctmc(PRISM_SOURCE, {"alpha": alpha}).embedded_dtmc()


def parametric_model() -> ParametricModel:
    """The model as a function of ``α`` (for IMC derivation and Fig. 5)."""

    def builder(params: Mapping[str, float]) -> DTMC:
        return embedded_chain(params["alpha"])

    return ParametricModel(("alpha",), builder)


def failure_formula() -> Formula:
    """``P=? [ "init" & (X !"init" U "failure") ]``."""
    return parse_property(PROPERTY)


def exact_probability(alpha: float = ALPHA_TRUE) -> float:
    """Exact γ at *alpha* from the numerical engine (PRISM's role)."""
    return probability(embedded_chain(alpha), failure_formula())


def group_repair_imc(
    alpha_hat: float = ALPHA_HAT,
    alpha_interval: tuple[float, float] = ALPHA_INTERVAL,
    grid_points: int = 9,
) -> IMC:
    """The IMC ``[A(α̂)]``: entrywise transition ranges over the α interval.

    The embedded transition probabilities are monotone rational functions of
    α, so the grid endpoints dominate; interior points guard against any
    non-monotone entry.
    """
    return parametric_model().imc_over_box(
        {"alpha": alpha_interval}, center={"alpha": alpha_hat}, grid_points=grid_points
    )


def is_proposal(alpha_hat: float = ALPHA_HAT, mixing: float = 0.0) -> DTMC:
    """The IS distribution used in the experiments.

    The paper derives its proposal with the cross-entropy method of Ridder
    [24] against the learnt chain; cross-entropy converges to the
    zero-variance change of measure, which is directly computable here from
    the numerical engine, so the experiments use that limit (see
    EXPERIMENTS.md; ``repro.importance.cross_entropy`` provides the
    iterative method itself).
    """
    center = embedded_chain(alpha_hat)
    return zero_variance_proposal(center, failure_formula(), mixing=mixing)


def probability_curve(
    interval: tuple[float, float] = ALPHA_INTERVAL, points: int = 21
) -> tuple[np.ndarray, np.ndarray]:
    """γ(A(α)) over an α grid — the data of the paper's Figure 5."""
    formula = failure_formula()
    return parametric_model().probability_curve(
        lambda chain: probability(chain, formula), "alpha", interval, points
    )


def make_study(
    alpha_true: float = ALPHA_TRUE,
    alpha_hat: float = ALPHA_HAT,
    alpha_interval: tuple[float, float] = ALPHA_INTERVAL,
    n_samples: int = 10_000,
    confidence: float = 0.95,
    proposal_mixing: float = 0.2,
) -> CaseStudy:
    """Prepare the Section VI-B experiment configuration.

    The default ``proposal_mixing = 0.2`` blends the zero-variance tilt
    with the original rows so the IS estimator has the same ±3 % relative
    interval width the paper's cross-entropy proposal exhibits in Table II
    (a perfect proposal would collapse the IS interval to a point and hide
    the coverage failure the experiment demonstrates).
    """
    true_chain = embedded_chain(alpha_true)
    formula = failure_formula()
    imc = group_repair_imc(alpha_hat, alpha_interval)
    return CaseStudy(
        name="group-repair",
        imc=imc,
        formula=formula,
        proposal=is_proposal(alpha_hat, mixing=proposal_mixing),
        true_chain=true_chain,
        gamma_true=probability(true_chain, formula),
        gamma_center=probability(imc.center, formula),
        n_samples=n_samples,
        confidence=confidence,
    )
