"""Secure Water Treatment (SWaT) surrogate model (Section VI-D).

The paper's SWaT experiment runs on a 70-state DTMC/IMC *learnt from
execution logs* of the iTrust testbed — a proprietary dataset. The
substitution here (documented in DESIGN.md) keeps the paper's pipeline
intact and replaces only the data source:

1. a **synthetic ground truth**: a 70-state chain over
   (tank-level bucket × subsystem mode) abstracting stage 3 of the
   plant — 14 LIT301 level buckets (bucket 13 ≈ "level > 800") times 5
   modes (normal, inflow-stuck, drain-fault, repairing, degraded). Mode
   dynamics and mode-conditioned level drifts are fixed constants below;
2. **logs** are simulated from the ground truth and the paper's learning
   pipeline (frequentist counts + Okamoto margins,
   :mod:`repro.learning.frequentist`) produces the 70-state learnt DTMC
   ``Â`` and the IMC ``[Â]``;
3. the property is the paper's: from a failure state being repaired in
   about 5 steps, the level exceeds the threshold within 30 steps
   (``F<=30 "overflow"``), with ``γ(Â)`` in the paper's reported range
   ``[5e-3, 2.5e-2]``;
4. the IS proposal is the time-dependent zero-variance proposal of ``Â``
   blended with a defensive mixture — imperfect on purpose, reproducing
   the scattered, sometimes non-intersecting IS intervals of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reachability import probability
from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.importance.bounded import UnrolledProposal, time_dependent_zero_variance
from repro.learning.frequentist import learn_imc, observe_traces_batch
from repro.models.base import CaseStudy
from repro.properties.logic import Atom, Eventually, Formula
from repro.util.rng import ensure_rng

#: Level buckets (bucket LEVELS-1 represents LIT301 > 800).
LEVELS = 14
#: Subsystem modes.
MODES = 5
NORMAL, INFLOW_STUCK, DRAIN_FAULT, REPAIRING, DEGRADED = range(MODES)
MODE_NAMES = ("normal", "inflow-stuck", "drain-fault", "repairing", "degraded")

#: Mode transition matrix (row = current mode). Calibrated so that the
#: overflow probability from the initial failure state is ≈ 1.45e-2 — the
#: mid value of the paper's Table II SWaT rows.
MODE_DYNAMICS = np.array(
    [
        # normal  stuck  drain  repair degraded
        [0.970, 0.005, 0.010, 0.000, 0.015],  # normal
        [0.000, 0.700, 0.000, 0.300, 0.000],  # inflow-stuck
        [0.000, 0.000, 0.700, 0.300, 0.000],  # drain-fault
        [0.200, 0.000, 0.000, 0.800, 0.000],  # repairing  (~5 steps)
        [0.200, 0.000, 0.000, 0.000, 0.800],  # degraded
    ]
)

#: Mode-conditioned level drift: (up, stay, down).
LEVEL_DRIFT = np.array(
    [
        [0.24, 0.32, 0.44],  # normal: slow net drain
        [0.62, 0.24, 0.14],  # inflow-stuck: rises fast
        [0.05, 0.25, 0.70],  # drain-fault: falls fast
        [0.35, 0.30, 0.35],  # repairing: inflow still partly stuck
        [0.34, 0.33, 0.33],  # degraded: mild upward bias
    ]
)

#: The failure state the paper starts from: under repair, tank already high.
INITIAL_MODE = REPAIRING
INITIAL_LEVEL = 5

#: Step bound of the overflow property.
BOUND = 30

#: Default log volume for the learning pipeline (~5 M transitions — enough
#: for per-state Okamoto margins below 1 %, like the testbed's long logs).
LOG_TRACES = 2_000
LOG_STEPS = 2_500
#: Confidence parameter of the Okamoto learning margins.
LEARN_DELTA = 1e-2


def state_index(mode: int, level: int) -> int:
    """Flat index of ``(mode, level)``."""
    if not 0 <= mode < MODES or not 0 <= level < LEVELS:
        raise ValueError(f"invalid (mode, level) = ({mode}, {level})")
    return mode * LEVELS + level


def state_of(index: int) -> tuple[int, int]:
    """Inverse of :func:`state_index`."""
    return divmod(index, LEVELS)


def ground_truth() -> DTMC:
    """The 70-state synthetic ground-truth chain."""
    n = MODES * LEVELS
    matrix = np.zeros((n, n))
    for mode in range(MODES):
        up, stay, down = LEVEL_DRIFT[mode]
        for level in range(LEVELS):
            source = state_index(mode, level)
            # Boundary redistribution: at level 0 "down" folds into "stay",
            # at the top bucket "up" does.
            level_probs: dict[int, float] = {}
            for target_level, p in (
                (min(level + 1, LEVELS - 1), up),
                (level, stay),
                (max(level - 1, 0), down),
            ):
                level_probs[target_level] = level_probs.get(target_level, 0.0) + p
            for next_mode in range(MODES):
                mode_p = MODE_DYNAMICS[mode, next_mode]
                if mode_p == 0.0:
                    continue
                for target_level, level_p in level_probs.items():
                    matrix[source, state_index(next_mode, target_level)] += mode_p * level_p
    overflow = np.zeros(n, dtype=bool)
    for mode in range(MODES):
        overflow[state_index(mode, LEVELS - 1)] = True
    labels = {
        "overflow": overflow,
        "init": [state_index(INITIAL_MODE, INITIAL_LEVEL)],
        "repairing": [state_index(REPAIRING, level) for level in range(LEVELS)],
    }
    names = [f"({MODE_NAMES[m]},L{level})" for m in range(MODES) for level in range(LEVELS)]
    return DTMC(matrix, state_index(INITIAL_MODE, INITIAL_LEVEL), labels, names)


def overflow_formula() -> Formula:
    """``F<=30 "overflow"`` — level exceeds the threshold within 30 steps."""
    return Eventually(Atom("overflow"), BOUND)


@dataclass
class SwatPipeline:
    """Everything the learn-then-verify pipeline produces."""

    truth: DTMC
    learned_imc: IMC
    proposal: UnrolledProposal
    gamma_true: float
    gamma_center: float
    #: The raw observation counts the model was learnt from.
    log_counts: object = None


def learn_pipeline(
    rng: np.random.Generator | int | None = None,
    log_traces: int = LOG_TRACES,
    log_steps: int = LOG_STEPS,
    delta: float = LEARN_DELTA,
    proposal_mixing: float = 0.4,
) -> SwatPipeline:
    """Simulate logs, learn the DTMC/IMC, and build the IS proposal.

    ``proposal_mixing`` keeps the proposal deliberately imperfect (see the
    module docstring); 0 gives the exact time-dependent zero-variance
    proposal of the learnt chain.
    """
    generator = ensure_rng(rng)
    truth = ground_truth()
    counts = observe_traces_batch(truth, n_steps=log_steps, n_traces=log_traces, rng=generator)
    imc = learn_imc(counts, truth.n_states, delta=delta, template=truth)
    formula = overflow_formula()
    proposal = time_dependent_zero_variance(imc.center, formula, mixing=proposal_mixing)
    return SwatPipeline(
        truth=truth,
        learned_imc=imc,
        proposal=proposal,
        gamma_true=probability(truth, formula),
        gamma_center=probability(imc.center, formula),
        log_counts=counts,
    )


def make_study(
    rng: np.random.Generator | int | None = None,
    n_samples: int = 10_000,
    confidence: float = 0.99,
    log_traces: int = LOG_TRACES,
    log_steps: int = LOG_STEPS,
    delta: float = LEARN_DELTA,
    proposal_mixing: float = 0.4,
) -> tuple[CaseStudy, UnrolledProposal]:
    """Prepare the Section VI-D experiment configuration.

    Returns the study *and* the unrolled proposal — SWaT sampling goes
    through :func:`repro.importance.bounded.run_bounded_importance_sampling`
    because the proposal is time-dependent. Fig. 4 uses 99 % intervals.
    """
    pipeline = learn_pipeline(
        rng,
        log_traces=log_traces,
        log_steps=log_steps,
        delta=delta,
        proposal_mixing=proposal_mixing,
    )
    study = CaseStudy(
        name="swat",
        imc=pipeline.learned_imc,
        formula=overflow_formula(),
        proposal=pipeline.learned_imc.center,  # placeholder; sampling is unrolled
        true_chain=pipeline.truth,
        gamma_true=pipeline.gamma_true,
        gamma_center=pipeline.gamma_center,
        n_samples=n_samples,
        confidence=confidence,
    )
    return study, pipeline.proposal
