"""Gambler's ruin with a perturbed win bias.

A walk on ``0..N`` starting from bankroll ``k``: each round is won with
probability ``p`` (one unit up) and lost with ``1 − p``; the boundary
states ``0`` (ruin) and ``N`` (the target fortune) are absorbing. The
property is reaching the target before ruin, ``F "win"``, with the closed
form

    γ = (1 − r^k) / (1 − r^N),          r = (1 − p) / p

(``γ = k/N`` at ``p = 1/2``). The default unfavourable bias
``p = 0.3, N = 20, k = 10`` gives ``γ ≈ 2.09e-4``. The IMC perturbs the
bias on every non-absorbing row, ``p ∈ [p̂ ± ε]`` — the standard
parametric-family stress test of the interval-chain literature.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.importance.zero_variance import zero_variance_proposal
from repro.models.base import CaseStudy
from repro.properties.logic import Atom, Eventually, Formula

#: Target fortune ``N`` and initial bankroll ``k``.
TARGET = 20
START = 10
#: True per-round win probability.
P_TRUE = 0.3
#: The learnt point estimate and its margin: ``p ∈ [p̂ − ε, p̂ + ε]``.
P_HAT = 0.31
P_EPSILON = 0.02


def gamblers_ruin_chain(p: float = P_TRUE, target: int = TARGET, start: int = START) -> DTMC:
    """The ruin walk on ``0..target`` with win probability *p*."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie strictly inside (0, 1)")
    if not 0 < start < target:
        raise ValueError(f"start must lie strictly between 0 and {target}")
    n = target + 1
    matrix = np.zeros((n, n))
    matrix[0, 0] = 1.0
    matrix[target, target] = 1.0
    for state in range(1, target):
        matrix[state, state + 1] = p
        matrix[state, state - 1] = 1.0 - p
    labels = {"init": [start], "win": [target], "ruin": [0]}
    names = [f"b{state}" for state in range(n)]
    return DTMC(matrix, start, labels, state_names=names)


def exact_probability(p: float = P_TRUE, target: int = TARGET, start: int = START) -> float:
    """Closed-form γ of reaching the target fortune before ruin."""
    if p == 0.5:
        return start / target
    r = (1.0 - p) / p
    return (1.0 - r**start) / (1.0 - r**target)


def win_formula() -> Formula:
    """The property φ: eventually reach the target fortune."""
    return Eventually(Atom("win"))


def gamblers_ruin_imc(
    p_hat: float = P_HAT,
    p_epsilon: float = P_EPSILON,
    target: int = TARGET,
    start: int = START,
) -> IMC:
    """The IMC ``[Â ± ε]``: the bias perturbed on every transient row."""
    center = gamblers_ruin_chain(p_hat, target, start)
    epsilon = np.zeros((target + 1, target + 1))
    for state in range(1, target):
        epsilon[state, state + 1] = p_epsilon
        epsilon[state, state - 1] = p_epsilon
    return IMC.from_center(center, epsilon)


def is_proposal(
    p_hat: float = P_HAT,
    target: int = TARGET,
    start: int = START,
    mixing: float = 0.0,
) -> DTMC:
    """Zero-variance IS proposal w.r.t. the learnt chain (see repair_group)."""
    chain = gamblers_ruin_chain(p_hat, target, start)
    return zero_variance_proposal(chain, win_formula(), mixing=mixing)


def make_study(
    p_true: float = P_TRUE,
    p_hat: float = P_HAT,
    p_epsilon: float = P_EPSILON,
    target: int = TARGET,
    start: int = START,
    n_samples: int = 10_000,
    confidence: float = 0.95,
    proposal_mixing: float = 0.2,
) -> CaseStudy:
    """Prepare the gambler's-ruin study (see ``repair_group.make_study``
    for the role of ``proposal_mixing``)."""
    true_chain = gamblers_ruin_chain(p_true, target, start)
    imc = gamblers_ruin_imc(p_hat, p_epsilon, target, start)
    return CaseStudy(
        name="gamblers-ruin",
        imc=imc,
        formula=win_formula(),
        proposal=is_proposal(p_hat, target, start, mixing=proposal_mixing),
        true_chain=true_chain,
        gamma_true=exact_probability(p_true, target, start),
        gamma_center=exact_probability(p_hat, target, start),
        n_samples=n_samples,
        confidence=confidence,
    )
