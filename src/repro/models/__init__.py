"""The case-study models, ready-made for the experiments.

The paper's three studies plus the parametric IMC families live here as
one module each; :mod:`repro.models.registry` collects them into the
named :data:`~repro.models.registry.REGISTRY` the experiments, CLI and
benchmarks resolve studies from.
"""

from repro.models.base import CaseStudy
from repro.models import (
    birth_death,
    gamblers_ruin,
    illustrative,
    knuth_yao,
    repair_group,
    repair_large,
    swat,
    tandem_repair,
)
from repro.models.registry import (
    REGISTRY,
    PreparedStudy,
    StudyRegistry,
    StudySpec,
    register_default_studies,
)

__all__ = [
    "REGISTRY",
    "CaseStudy",
    "PreparedStudy",
    "StudyRegistry",
    "StudySpec",
    "birth_death",
    "gamblers_ruin",
    "illustrative",
    "knuth_yao",
    "register_default_studies",
    "repair_group",
    "repair_large",
    "swat",
    "tandem_repair",
]
