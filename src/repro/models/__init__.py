"""The paper's case-study models, ready-made for the experiments."""

from repro.models.base import CaseStudy
from repro.models import illustrative, repair_group, repair_large, swat

__all__ = [
    "CaseStudy",
    "illustrative",
    "repair_group",
    "repair_large",
    "swat",
]
