"""Tandem repair network — the repair family at configurable scale.

A parametric generalisation of the Section VI-B group-repair benchmark:
``n_types`` component types with ``n_components`` components each fail
independently at rate ``(n − k)·α`` and are repaired one by one at rate
``μ`` under strict tandem priority — type ``i`` repairs only while every
higher-priority type ``j < i`` is fully up. The modelling-language source
is generated, so the state space ``(n_components + 1)^n_types`` scales
from the 64-state default (3 × 3) up to repair_large territory.

The dependability property is the family's usual one: every component of
every type fails before the system returns to the all-up state,

    P=? [ "init" & (X !"init" U "failure") ],

evaluated on the embedded jump chain. γ has no closed form and is
computed by the numerical engine; at the default ``α = 0.15``,
``γ ≈ 8.2e-3``. The IMC ranges the transition probabilities over a learnt
α interval via :meth:`~repro.core.parametric.ParametricModel.imc_over_box`,
exactly like the paper's repair studies.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.reachability import probability
from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.core.parametric import ParametricModel
from repro.importance.zero_variance import zero_variance_proposal
from repro.lang.builder import build_ctmc
from repro.models.base import CaseStudy
from repro.properties.logic import Formula
from repro.properties.parser import parse_property

#: Network shape: component types and components per type.
N_TYPES = 3
N_COMPONENTS = 3
#: Repair rate (shared by every type).
MU = 1.0

#: The paper-style parameter values.
ALPHA_TRUE = 0.15
ALPHA_HAT = 0.1495
#: The learnt confidence interval for α (±2 % around the estimate).
ALPHA_INTERVAL = (0.1465, 0.1525)

#: The dependability property.
PROPERTY = 'P=? [ "init" & (X !"init" U "failure") ]'


def prism_source(n_types: int = N_TYPES, n_components: int = N_COMPONENTS) -> str:
    """Generate the modelling-language source of the tandem network."""
    if n_types < 1 or n_components < 1:
        raise ValueError("the network needs at least one type and one component")
    lines = [
        "ctmc",
        f"const int n = {n_components};",
        "const double alpha;",
        f"const double mu = {MU};",
    ]
    for index in range(1, n_types + 1):
        higher_priority_idle = " & ".join(f"s{j} = 0" for j in range(1, index))
        guard = f"s{index} > 0"
        if higher_priority_idle:
            guard = f"{guard} & {higher_priority_idle}"
        lines.extend(
            [
                f"module type{index}",
                f"  s{index} : [0..n] init 0;",
                f"  [] s{index} < n -> (n-s{index})*alpha : (s{index}'=s{index}+1);",
                f"  [] {guard} -> mu : (s{index}'=s{index}-1);",
                "endmodule",
            ]
        )
    failure = " & ".join(f"s{i} = n" for i in range(1, n_types + 1))
    lines.append(f'label "failure" = {failure};')
    return "\n".join(lines)


def embedded_chain(
    alpha: float = ALPHA_TRUE,
    n_types: int = N_TYPES,
    n_components: int = N_COMPONENTS,
) -> DTMC:
    """The embedded jump chain of the tandem network at rate *alpha*."""
    return build_ctmc(prism_source(n_types, n_components), {"alpha": alpha}).embedded_dtmc()


def parametric_model(n_types: int = N_TYPES, n_components: int = N_COMPONENTS) -> ParametricModel:
    """The network as a function of ``α`` (for the IMC derivation)."""

    def builder(params: Mapping[str, float]) -> DTMC:
        return embedded_chain(params["alpha"], n_types, n_components)

    return ParametricModel(("alpha",), builder)


def failure_formula() -> Formula:
    """``P=? [ "init" & (X !"init" U "failure") ]``."""
    return parse_property(PROPERTY)


def exact_probability(
    alpha: float = ALPHA_TRUE,
    n_types: int = N_TYPES,
    n_components: int = N_COMPONENTS,
) -> float:
    """Exact γ at *alpha* from the numerical engine."""
    return probability(embedded_chain(alpha, n_types, n_components), failure_formula())


def tandem_repair_imc(
    alpha_hat: float = ALPHA_HAT,
    alpha_interval: tuple[float, float] = ALPHA_INTERVAL,
    n_types: int = N_TYPES,
    n_components: int = N_COMPONENTS,
    grid_points: int = 5,
) -> IMC:
    """The IMC ``[A(α̂)]`` of entrywise transition ranges over the α interval."""
    return parametric_model(n_types, n_components).imc_over_box(
        {"alpha": alpha_interval}, center={"alpha": alpha_hat}, grid_points=grid_points
    )


def is_proposal(
    alpha_hat: float = ALPHA_HAT,
    n_types: int = N_TYPES,
    n_components: int = N_COMPONENTS,
    mixing: float = 0.0,
) -> DTMC:
    """Zero-variance IS proposal w.r.t. the learnt chain (see repair_group)."""
    chain = embedded_chain(alpha_hat, n_types, n_components)
    return zero_variance_proposal(chain, failure_formula(), mixing=mixing)


def make_study(
    alpha_true: float = ALPHA_TRUE,
    alpha_hat: float = ALPHA_HAT,
    alpha_interval: tuple[float, float] = ALPHA_INTERVAL,
    n_types: int = N_TYPES,
    n_components: int = N_COMPONENTS,
    n_samples: int = 10_000,
    confidence: float = 0.95,
    proposal_mixing: float = 0.2,
    grid_points: int = 5,
) -> CaseStudy:
    """Prepare the tandem-repair study (see ``repair_group.make_study`` for
    the role of ``proposal_mixing``)."""
    true_chain = embedded_chain(alpha_true, n_types, n_components)
    formula = failure_formula()
    imc = tandem_repair_imc(alpha_hat, alpha_interval, n_types, n_components, grid_points)
    return CaseStudy(
        name="tandem-repair",
        imc=imc,
        formula=formula,
        proposal=is_proposal(alpha_hat, n_types, n_components, mixing=proposal_mixing),
        true_chain=true_chain,
        gamma_true=probability(true_chain, formula),
        gamma_center=probability(imc.center, formula),
        n_samples=n_samples,
        confidence=confidence,
    )
