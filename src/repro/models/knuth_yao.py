"""Knuth–Yao die with an interval coin.

The classic Knuth–Yao automaton simulates a six-sided die with a sequence
of coin flips: seven internal states ``s0..s6`` and six absorbing face
states. With a fair coin every face has probability exactly ``1/6``; with
a heads-biased coin (heads probability ``p``, tails ``q = 1 − p``) the
probability of rolling a six has the closed form

    γ = q³ / (1 − p·q)

(the six-branch ``s0 →T s2 →T s6 →T face6`` with the ``s6 →H s2`` retry
loop). The default ``p = 0.9`` makes rolling a six a ``γ ≈ 1.1e-3`` rare
event. The IMC gives the coin an interval bias, ``p ∈ [p̂ ± ε]`` on every
internal row — the smallest member of the registry's parametric families.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.importance.zero_variance import zero_variance_proposal
from repro.models.base import CaseStudy
from repro.properties.logic import Atom, Eventually, Formula

#: True heads probability of the coin.
P_TRUE = 0.9
#: The learnt point estimate and its margin: ``p ∈ [p̂ − ε, p̂ + ε]``.
P_HAT = 0.89
P_EPSILON = 0.015

#: Internal states.
S0, S1, S2, S3, S4, S5, S6 = range(7)
#: Absorbing face states (die values 1..6).
FACE_1, FACE_2, FACE_3, FACE_4, FACE_5, FACE_6 = range(7, 13)
N_STATES = 13

#: ``(heads-successor, tails-successor)`` of every internal state.
COIN_EDGES = {
    S0: (S1, S2),
    S1: (S3, S4),
    S2: (S5, S6),
    S3: (S1, FACE_1),
    S4: (FACE_2, FACE_3),
    S5: (FACE_4, FACE_5),
    S6: (S2, FACE_6),
}


def knuth_yao_chain(p: float = P_TRUE) -> DTMC:
    """The Knuth–Yao die automaton with coin bias *p*."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie strictly inside (0, 1)")
    matrix = np.zeros((N_STATES, N_STATES))
    for state, (heads, tails) in COIN_EDGES.items():
        matrix[state, heads] += p
        matrix[state, tails] += 1.0 - p
    for face in range(FACE_1, FACE_6 + 1):
        matrix[face, face] = 1.0
    labels = {
        "init": [S0],
        "six": [FACE_6],
        "rolled": list(range(FACE_1, FACE_6 + 1)),
    }
    names = [f"s{state}" for state in range(7)] + [f"d{face}" for face in range(1, 7)]
    return DTMC(matrix, S0, labels, state_names=names)


def exact_probability(p: float = P_TRUE) -> float:
    """Closed-form γ = q³/(1 − p·q) of rolling a six."""
    q = 1.0 - p
    return q**3 / (1.0 - p * q)


def six_formula() -> Formula:
    """The property φ: eventually roll a six."""
    return Eventually(Atom("six"))


def knuth_yao_imc(p_hat: float = P_HAT, p_epsilon: float = P_EPSILON) -> IMC:
    """The IMC ``[Â ± ε]``: the coin bias perturbed on every internal row."""
    center = knuth_yao_chain(p_hat)
    epsilon = np.zeros((N_STATES, N_STATES))
    for state, (heads, tails) in COIN_EDGES.items():
        epsilon[state, heads] = p_epsilon
        epsilon[state, tails] = p_epsilon
    return IMC.from_center(center, epsilon)


def is_proposal(p_hat: float = P_HAT, mixing: float = 0.0) -> DTMC:
    """Zero-variance IS proposal w.r.t. the learnt chain (see repair_group)."""
    return zero_variance_proposal(knuth_yao_chain(p_hat), six_formula(), mixing=mixing)


def make_study(
    p_true: float = P_TRUE,
    p_hat: float = P_HAT,
    p_epsilon: float = P_EPSILON,
    n_samples: int = 10_000,
    confidence: float = 0.95,
    proposal_mixing: float = 0.2,
) -> CaseStudy:
    """Prepare the Knuth–Yao interval-coin study (see
    ``repair_group.make_study`` for the role of ``proposal_mixing``)."""
    true_chain = knuth_yao_chain(p_true)
    imc = knuth_yao_imc(p_hat, p_epsilon)
    return CaseStudy(
        name="knuth-yao",
        imc=imc,
        formula=six_formula(),
        proposal=is_proposal(p_hat, mixing=proposal_mixing),
        true_chain=true_chain,
        gamma_true=exact_probability(p_true),
        gamma_center=exact_probability(p_hat),
        n_samples=n_samples,
        confidence=confidence,
    )
