"""The large repair model (Section VI-C).

Six component types with (5, 4, 6, 3, 7, 5) components fail with per-type
rates ``(2.5α, α, 5α, 3α, α, 5α)`` (scaled, as usual, by the number of
still-working components) and are repaired one by one at rates
``(1, 1.5, 1, 2, 1, 1.5)`` under strict type priority — type ``i`` repairs
only while no component of a type ``j < i`` is down. The state space is the
product of the per-type counters: 6·5·7·4·8·6 = 40 320 states (the paper's
"40820" appears to be a digit transposition; every other structural datum
matches).

Property: all components of *at least one* type are down before the system
returns to the all-up state. The paper reports ``γ = 7.488e-7`` at
``α = 0.001`` and studies the sensitivity of IS vs IMCIS coverage as the
true α moves inside/outside the learnt interval
``[0.8236e-3, 1.1764e-3]``.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.reachability import probability
from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.core.parametric import ParametricModel
from repro.importance.zero_variance import zero_variance_proposal
from repro.lang.builder import build_ctmc
from repro.models.base import CaseStudy
from repro.properties.logic import Formula
from repro.properties.parser import parse_property

#: Components per type.
COMPONENT_COUNTS = (5, 4, 6, 3, 7, 5)
#: Per-type failure-rate multiples of α.
FAILURE_MULTIPLIERS = (2.5, 1.0, 5.0, 3.0, 1.0, 5.0)
#: Per-type repair rates.
REPAIR_RATES = (1.0, 1.5, 1.0, 2.0, 1.0, 1.5)

#: The paper's parameter values.
ALPHA_TRUE = 1e-3
ALPHA_HAT = 1e-3
ALPHA_INTERVAL = (0.8236e-3, 1.1764e-3)

PROPERTY = 'P=? [ "init" & (X !"init" U "failure") ]'


def prism_source() -> str:
    """Generate the modelling-language source of the six-type model."""
    lines = ["ctmc", "const double alpha;"]
    for index, (count, multiplier, repair) in enumerate(
        zip(COMPONENT_COUNTS, FAILURE_MULTIPLIERS, REPAIR_RATES), start=1
    ):
        lines.append(f"const int n{index} = {count};")
        lines.append(f"const double fr{index} = {multiplier} * alpha;")
        lines.append(f"const double mu{index} = {repair};")
    for index in range(1, len(COMPONENT_COUNTS) + 1):
        higher_priority_idle = " & ".join(f"s{j} = 0" for j in range(1, index))
        guard = f"s{index} > 0"
        if higher_priority_idle:
            guard = f"{guard} & {higher_priority_idle}"
        lines.extend(
            [
                f"module type{index}",
                f"  s{index} : [0..n{index}] init 0;",
                f"  [] s{index} < n{index} -> (n{index}-s{index})*fr{index} : "
                f"(s{index}'=s{index}+1);",
                f"  [] {guard} -> mu{index} : (s{index}'=s{index}-1);",
                "endmodule",
            ]
        )
    failure = " | ".join(f"s{i} = n{i}" for i in range(1, len(COMPONENT_COUNTS) + 1))
    lines.append(f'label "failure" = {failure};')
    return "\n".join(lines)


def embedded_chain(alpha: float = ALPHA_TRUE) -> DTMC:
    """The 40 320-state embedded jump chain (sparse) at rate *alpha*."""
    return build_ctmc(prism_source(), {"alpha": alpha}).embedded_dtmc()


def parametric_model() -> ParametricModel:
    """The model as a function of α."""

    def builder(params: Mapping[str, float]) -> DTMC:
        return embedded_chain(params["alpha"])

    return ParametricModel(("alpha",), builder)


def failure_formula() -> Formula:
    """``P=? [ "init" & (X !"init" U "failure") ]``."""
    return parse_property(PROPERTY)


def exact_probability(alpha: float = ALPHA_TRUE) -> float:
    """Exact γ at *alpha* (sparse linear solve)."""
    return probability(embedded_chain(alpha), failure_formula())


def large_repair_imc(
    alpha_hat: float = ALPHA_HAT,
    alpha_interval: tuple[float, float] = ALPHA_INTERVAL,
    grid_points: int = 5,
) -> IMC:
    """The sparse IMC of entrywise transition ranges over the α interval."""
    return parametric_model().imc_over_box(
        {"alpha": alpha_interval}, center={"alpha": alpha_hat}, grid_points=grid_points
    )


def is_proposal(alpha_hat: float = ALPHA_HAT, mixing: float = 0.0) -> DTMC:
    """Zero-variance IS proposal w.r.t. the learnt chain (see repair_group)."""
    return zero_variance_proposal(embedded_chain(alpha_hat), failure_formula(), mixing=mixing)


def make_study(
    alpha_true: float = ALPHA_TRUE,
    alpha_hat: float = ALPHA_HAT,
    alpha_interval: tuple[float, float] = ALPHA_INTERVAL,
    n_samples: int = 10_000,
    confidence: float = 0.95,
    proposal_mixing: float = 0.2,
    grid_points: int = 5,
) -> CaseStudy:
    """Prepare the Section VI-C experiment configuration.

    Building the IMC scans ``grid_points`` instances of the 40 320-state
    model; allow a few seconds. See ``repair_group.make_study`` for the
    role of ``proposal_mixing``.
    """
    true_chain = embedded_chain(alpha_true)
    formula = failure_formula()
    imc = large_repair_imc(alpha_hat, alpha_interval, grid_points)
    return CaseStudy(
        name="large-repair",
        imc=imc,
        formula=formula,
        proposal=is_proposal(alpha_hat, mixing=proposal_mixing),
        true_chain=true_chain,
        gamma_true=probability(true_chain, formula),
        gamma_center=probability(imc.center, formula),
        n_samples=n_samples,
        confidence=confidence,
    )
