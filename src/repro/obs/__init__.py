"""Observability: metrics, tracing spans and run profiles.

Zero-dependency instrumentation threaded through every layer of the
stack — the simulation engine, the artifact store, the estimators and
the service/fleet tier:

* :mod:`repro.obs.metrics` — a process-local metrics registry
  (counters, gauges, fixed-bucket histograms on lock-free per-thread
  shards) with Prometheus text exposition and a snapshot/merge
  transport that carries worker-process counts back to the parent.
* :mod:`repro.obs.trace` — nestable ``span(...)`` context managers
  emitting structured events to a bounded in-memory ring and an
  optional JSON-lines file; off by default, near-free when disabled.
* :mod:`repro.obs.runprofile` — folds one run's spans into a per-phase
  profile (simulate / weight-accumulate / store-get / store-put /
  optimize) rendered as a table or JSON.

The cardinal rule, enforced by ``tests/obs/test_parity.py`` and the
``bench_obs.py`` CI gate: observing a run never changes it. No RNG
draw, store key or result byte depends on whether tracing is on.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    snapshot_delta,
)
from repro.obs.runprofile import PHASE_NAMES, PhaseStat, RunProfile
from repro.obs.trace import (
    DEFAULT_RING_SIZE,
    annotate,
    configure,
    enabled,
    event,
    events,
    reset,
    span,
    status,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "snapshot_delta",
    "DEFAULT_LATENCY_BUCKETS",
    "PhaseStat",
    "RunProfile",
    "PHASE_NAMES",
    "annotate",
    "configure",
    "enabled",
    "event",
    "events",
    "reset",
    "span",
    "status",
    "DEFAULT_RING_SIZE",
]
