"""Aggregate one run's trace events into a per-phase profile.

The span taxonomy maps onto five canonical phases of an experiment run
(``simulate``, ``weight-accumulate``, ``store-get``, ``store-put``,
``optimize``); every other span name is profiled under itself. For each
phase the profile reports call count, total (inclusive) time, *self*
time — inclusive minus the time of direct children, computed from the
parent links every span event carries — and min/max durations, so a
``simulate`` second spent inside an ``optimize`` round is attributed to
simulation, not double-counted against the optimiser.

``repro matrix --profile out.json`` enables tracing for the run, builds
a :class:`RunProfile` from the ring buffer, writes the JSON payload and
prints the table rendering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.util.tables import format_table

__all__ = [
    "PhaseStat",
    "RunProfile",
    "PHASE_NAMES",
]

#: The canonical span names an experiment run is expected to emit, in
#: rendering order. Unknown span names follow, ordered by self time.
PHASE_NAMES = (
    "simulate",
    "weight-accumulate",
    "store-get",
    "store-put",
    "optimize",
)

#: Span names remapped onto canonical phases (call sites use the short
#: form; the profile reports the canonical one).
_PHASE_ALIASES = {"weights": "weight-accumulate"}


@dataclass
class PhaseStat:
    """Aggregate timing of one phase across every span that hit it."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, duration: float, self_time: float) -> None:
        """Fold one span's inclusive *duration* and *self_time* in."""
        self.count += 1
        self.total_s += duration
        self.self_s += self_time
        self.min_s = min(self.min_s, duration)
        self.max_s = max(self.max_s, duration)

    def to_payload(self) -> "dict[str, object]":
        """JSON-able form of this phase's aggregates."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "min_s": 0.0 if self.count == 0 else self.min_s,
            "max_s": self.max_s,
        }


class RunProfile:
    """Per-phase timing profile distilled from a list of trace events.

    Build one with :meth:`from_events` over the ring-buffer contents (or
    a parsed trace file); render with :meth:`render` for humans or
    :meth:`to_payload` / :meth:`to_json` for machines.
    """

    def __init__(self, phases: "dict[str, PhaseStat]", wall_s: float, events_seen: int):
        self.phases = phases
        self.wall_s = wall_s
        self.events_seen = events_seen

    @classmethod
    def from_events(cls, events: "list[dict]") -> "RunProfile":
        """Aggregate span *events* (as emitted by :mod:`repro.obs.trace`)."""
        spans = [e for e in events if e.get("kind") == "span" and "dur_s" in e]
        child_time: "dict[str, float]" = {}
        for record in spans:
            parent = record.get("parent")
            if parent:
                child_time[parent] = child_time.get(parent, 0.0) + float(record["dur_s"])
        phases: "dict[str, PhaseStat]" = {}
        start = float("inf")
        end = 0.0
        for record in spans:
            duration = float(record["dur_s"])
            self_time = max(0.0, duration - child_time.get(str(record.get("id")), 0.0))
            name = str(record.get("name"))
            name = _PHASE_ALIASES.get(name, name)
            stat = phases.get(name)
            if stat is None:
                stat = phases[name] = PhaseStat(name)
            stat.add(duration, self_time)
            ts = float(record.get("ts", 0.0))
            start = min(start, ts)
            end = max(end, ts + duration)
        wall = max(0.0, end - start) if spans else 0.0
        return cls(phases, wall, len(events))

    def _ordered(self) -> "list[PhaseStat]":
        known = [self.phases[name] for name in PHASE_NAMES if name in self.phases]
        rest = sorted(
            (stat for name, stat in self.phases.items() if name not in PHASE_NAMES),
            key=lambda stat: -stat.self_s,
        )
        return known + rest

    def to_payload(self) -> "dict[str, object]":
        """JSON-able profile: wall span, event count, per-phase stats."""
        return {
            "wall_s": self.wall_s,
            "events_seen": self.events_seen,
            "phases": [stat.to_payload() for stat in self._ordered()],
        }

    def to_json(self, indent: int = 2) -> str:
        """The payload as a JSON document."""
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable table: one row per phase, ordered canonically."""
        if not self.phases:
            return "run profile: no spans captured (is tracing enabled?)"
        rows = []
        for stat in self._ordered():
            share = (stat.self_s / self.wall_s * 100.0) if self.wall_s > 0 else 0.0
            rows.append(
                [
                    stat.name,
                    stat.count,
                    f"{stat.total_s:.3f}",
                    f"{stat.self_s:.3f}",
                    f"{share:.1f}%",
                    f"{stat.min_s * 1e3:.2f}",
                    f"{stat.max_s * 1e3:.2f}",
                ]
            )
        title = f"run profile — wall {self.wall_s:.3f}s over {self.events_seen} events"
        return format_table(
            ["phase", "calls", "total s", "self s", "self %", "min ms", "max ms"],
            rows,
            title=title,
        )
