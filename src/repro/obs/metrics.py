"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is deliberately tiny and dependency-free — a strict subset
of the Prometheus client-library data model, enough to answer the
questions the stack actually asks (how many traces were simulated, what
fraction of store reads hit, where the request latency tail sits)
without pulling a client library into the runtime image.

Design constraints, in order:

* **Near-zero hot-path cost.** Counter and histogram cells live in
  lock-free per-thread shards (each thread mutates only its own dict,
  which is safe under the GIL); shards are merged on read. The only
  lock taken on a write path is a one-time registration lock the first
  time a thread touches a metric. Hot loops should pre-bind label sets
  with :meth:`Counter.labels` once and call ``inc``/``observe`` on the
  bound cell.
* **Mergeable across processes.** Worker processes (the parallel pool,
  fleet workers) accumulate into their own process registry; a
  :meth:`MetricsRegistry.snapshot` / :func:`snapshot_delta` /
  :meth:`MetricsRegistry.merge` round-trip ships their counts back to
  the parent — this is how per-worker store accounting and shard
  timings survive the process boundary.
* **Observation only.** Nothing in this module touches RNG state,
  store keys or result bytes; dropping every call changes no output.

:meth:`MetricsRegistry.render` emits Prometheus text exposition format
(version 0.0.4), served by ``GET /metrics`` on ``repro serve``.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "snapshot_delta",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds), tuned for the span of
#: latencies the stack produces: sub-millisecond store reads up to
#: multi-minute matrix cells. ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    if float(as_int) == value:
        return str(as_int)
    return repr(value)


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(bound)


class _Metric:
    """Shared shard bookkeeping for counters and histograms.

    Each thread gets a private cell dict per metric (registered once
    under a lock); reads merge a point-in-time copy of every shard.
    ``dict.copy`` is atomic under the GIL, so readers never observe a
    torn shard even while writer threads keep incrementing.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: "tuple[str, ...]"):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._local = threading.local()
        self._shards: "list[dict]" = []
        self._register_lock = threading.Lock()

    def _cells(self) -> dict:
        cells = getattr(self._local, "cells", None)
        if cells is None:
            cells = {}
            self._local.cells = cells
            with self._register_lock:
                self._shards.append(cells)
        return cells

    def _label_key(self, labels: "dict[str, str]") -> "tuple[str, ...]":
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _merged(self) -> "dict[tuple[str, ...], object]":
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (default 1) to the unlabelled cell."""
        cells = self._cells()
        cells[()] = cells.get((), 0.0) + amount

    def labels(self, **labels: str) -> "_BoundCounter":
        """A bound cell for one label-value combination (cache it)."""
        return _BoundCounter(self, self._label_key(labels))

    def value(self, **labels: str) -> float:
        """Current merged value of one cell (0.0 when never touched)."""
        key = self._label_key(labels) if labels else ()
        return float(self._merged().get(key, 0.0))

    def _merged(self) -> "dict[tuple[str, ...], float]":
        merged: "dict[tuple[str, ...], float]" = {}
        with self._register_lock:
            shards = list(self._shards)
        for shard in shards:
            for key, value in shard.copy().items():
                merged[key] = merged.get(key, 0.0) + value
        return merged


class _BoundCounter:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Counter, key: "tuple[str, ...]"):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        cells = self._metric._cells()
        cells[self._key] = cells.get(self._key, 0.0) + amount


class Gauge(_Metric):
    """A value that can go up and down (current queue depth, last ESS).

    Gauges are set rarely (scrape time, batch boundaries), so they use a
    single locked dict instead of per-thread shards — summing shards
    would be wrong for last-write-wins semantics.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: "tuple[str, ...]"):
        super().__init__(name, help, labelnames)
        self._values: "dict[tuple[str, ...], float]" = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: str) -> None:
        """Set the cell selected by *labels* to *value*."""
        key = self._label_key(labels) if labels else ()
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add *amount* to the cell (negative amounts decrement)."""
        key = self._label_key(labels) if labels else ()
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one cell (0.0 when never set)."""
        key = self._label_key(labels) if labels else ()
        with self._lock:
            return self._values.get(key, 0.0)

    def _merged(self) -> "dict[tuple[str, ...], float]":
        with self._lock:
            return dict(self._values)


class Histogram(_Metric):
    """Fixed-bucket distribution (cumulative buckets on render).

    Cells hold ``[per-bucket counts..., overflow, sum, count]`` per
    label combination; buckets are upper bounds fixed at creation.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: "tuple[str, ...]",
        buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float) -> None:
        """Record *value* into the unlabelled cell."""
        self._observe((), value)

    def labels(self, **labels: str) -> "_BoundHistogram":
        """A bound cell for one label-value combination (cache it)."""
        return _BoundHistogram(self, self._label_key(labels))

    def _observe(self, key: "tuple[str, ...]", value: float) -> None:
        cells = self._cells()
        cell = cells.get(key)
        if cell is None:
            cell = cells[key] = [0] * (len(self.buckets) + 1) + [0.0, 0]
        cell[bisect_left(self.buckets, value)] += 1
        cell[-2] += value
        cell[-1] += 1

    def snapshot_cell(self, **labels: str) -> "dict[str, object]":
        """Merged ``{"counts", "sum", "count"}`` of one cell."""
        key = self._label_key(labels) if labels else ()
        cell = self._merged().get(key)
        if cell is None:
            return {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
        return {"counts": list(cell[:-2]), "sum": float(cell[-2]), "count": int(cell[-1])}

    def _merged(self) -> "dict[tuple[str, ...], list]":
        merged: "dict[tuple[str, ...], list]" = {}
        with self._register_lock:
            shards = list(self._shards)
        for shard in shards:
            for key, cell in shard.copy().items():
                into = merged.get(key)
                if into is None:
                    merged[key] = list(cell)
                else:
                    for index, value in enumerate(cell):
                        into[index] += value
        return merged


class _BoundHistogram:
    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Histogram, key: "tuple[str, ...]"):
        self._metric = metric
        self._key = key

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)


class MetricsRegistry:
    """Get-or-create metric registry with Prometheus text exposition.

    One registry per process is the normal shape (see :func:`registry`);
    tests instantiate their own for isolation. Creation is idempotent:
    asking twice for the same name returns the same object, and asking
    with a conflicting kind or label set raises ``ValueError`` — metric
    identity is global to the process, exactly like Prometheus.
    """

    def __init__(self) -> None:
        self._metrics: "dict[str, _Metric]" = {}
        self._lock = threading.RLock()

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: "tuple[str, ...]" = ()) -> Counter:
        """Get or create the counter *name*."""
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: "tuple[str, ...]" = ()) -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: "tuple[str, ...]" = (),
        buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram *name* (buckets fixed on first call)."""
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labelnames, buckets=buckets
        )

    def _sorted_metrics(self) -> "list[_Metric]":
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # -- exposition -------------------------------------------------------

    def render(self) -> str:
        """The whole registry in Prometheus text format 0.0.4."""
        lines: "list[str]" = []
        for metric in self._sorted_metrics():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            merged = metric._merged()
            for key in sorted(merged):
                labels = dict(zip(metric.labelnames, key))
                if isinstance(metric, Histogram):
                    lines.extend(self._render_histogram(metric, labels, merged[key]))
                else:
                    lines.append(
                        f"{metric.name}{self._label_block(labels)} "
                        f"{_format_value(merged[key])}"  # type: ignore[arg-type]
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label_block(labels: "dict[str, str]") -> str:
        if not labels:
            return ""
        body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in labels.items())
        return "{" + body + "}"

    @staticmethod
    def _render_histogram(metric: Histogram, labels: "dict[str, str]", cell: list) -> "list[str]":
        lines = []
        cumulative = 0
        for bound, count in zip(metric.buckets + (math.inf,), cell[:-2]):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_bound(bound)
            lines.append(
                f"{metric.name}_bucket{MetricsRegistry._label_block(bucket_labels)} {cumulative}"
            )
        block = MetricsRegistry._label_block(labels)
        lines.append(f"{metric.name}_sum{block} {_format_value(cell[-2])}")
        lines.append(f"{metric.name}_count{block} {cell[-1]}")
        return lines

    # -- cross-process transport ------------------------------------------

    def snapshot(self) -> "dict[str, dict]":
        """A JSON-able point-in-time copy of every metric.

        The payload round-trips through :func:`snapshot_delta` and
        :meth:`merge` — the worker-to-parent transport for pool shards
        and fleet workers.
        """
        payload: "dict[str, dict]" = {}
        for metric in self._sorted_metrics():
            cells = {
                json.dumps(list(key)): (list(value) if isinstance(value, list) else value)
                for key, value in metric._merged().items()
            }
            entry: "dict[str, object]" = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "cells": cells,
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            payload[metric.name] = entry
        return payload

    def merge(self, payload: "dict[str, dict]") -> None:
        """Fold a :meth:`snapshot` (or delta) into this registry.

        Counters and histogram cells *add*; gauges *set* (last write
        wins — they describe the reporting process's current state).
        """
        for name, entry in payload.items():
            labelnames = tuple(entry.get("labelnames", ()))
            kind = entry.get("kind")
            help_text = str(entry.get("help", ""))
            cells: "dict[str, object]" = entry.get("cells", {})  # type: ignore[assignment]
            if kind == "counter":
                metric = self.counter(name, help_text, labelnames)
                for key_json, value in cells.items():
                    key = tuple(json.loads(key_json))
                    shard = metric._cells()
                    shard[key] = shard.get(key, 0.0) + float(value)  # type: ignore[arg-type]
            elif kind == "gauge":
                metric = self.gauge(name, help_text, labelnames)
                for key_json, value in cells.items():
                    labels = dict(zip(labelnames, json.loads(key_json)))
                    metric.set(float(value), **labels)  # type: ignore[arg-type]
            elif kind == "histogram":
                buckets = tuple(entry.get("buckets", DEFAULT_LATENCY_BUCKETS))  # type: ignore[arg-type]
                metric = self.histogram(name, help_text, labelnames, buckets=buckets)
                for key_json, value in cells.items():
                    key = tuple(json.loads(key_json))
                    shard = metric._cells()
                    cell = shard.get(key)
                    if cell is None:
                        shard[key] = list(value)  # type: ignore[arg-type]
                    else:
                        for index, part in enumerate(value):  # type: ignore[arg-type]
                            cell[index] += part
            else:
                raise ValueError(f"cannot merge metric {name!r} of unknown kind {kind!r}")


def snapshot_delta(before: "dict[str, dict]", after: "dict[str, dict]") -> "dict[str, dict]":
    """The metric activity between two :meth:`MetricsRegistry.snapshot` calls.

    Counters and histograms subtract cell-wise (cells that did not move
    are dropped); gauges keep their *after* value. Feed the result to
    :meth:`MetricsRegistry.merge` on the receiving side. This is how a
    persistent pool worker reports exactly one task's activity even
    though its process registry accumulates across tasks.
    """
    delta: "dict[str, dict]" = {}
    for name, entry in after.items():
        prior = before.get(name, {})
        prior_cells: "dict[str, object]" = prior.get("cells", {}) if prior else {}
        kind = entry.get("kind")
        cells: "dict[str, object]" = {}
        for key_json, value in entry.get("cells", {}).items():  # type: ignore[union-attr]
            if kind == "histogram":
                base = prior_cells.get(key_json)
                if base is None:
                    moved = list(value)  # type: ignore[arg-type]
                else:
                    moved = [v - b for v, b in zip(value, base)]  # type: ignore[arg-type]
                if moved[-1]:
                    cells[key_json] = moved
            elif kind == "counter":
                moved_value = float(value) - float(prior_cells.get(key_json, 0.0))  # type: ignore[arg-type]
                if moved_value:
                    cells[key_json] = moved_value
            else:  # gauge: carry the latest value
                cells[key_json] = value
        if cells:
            delta[name] = {**entry, "cells": cells}
    return delta


_DEFAULT_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry (what ``/metrics`` serves)."""
    return _DEFAULT_REGISTRY
