"""Nestable tracing spans with a ring buffer and optional JSONL sink.

A *span* wraps one unit of work — simulating an ensemble, fitting a CE
round, reading a store record — and records its monotonic duration plus
whatever structured fields the call site attaches (trace counts, ESS,
kernel tier, cache hit/miss). Spans nest: each completed span emits one
event carrying its parent's id and depth, so a post-hoc pass (see
:mod:`repro.obs.runprofile`) can rebuild the tree and attribute self
time per phase.

Tracing is **off by default** and engineered so the disabled path is a
single module-global boolean check returning a shared no-op context
manager — cheap enough to leave ``span(...)`` calls in hot loops
(``benchmarks/bench_obs.py`` gates the disabled overhead below 2% of
the fused IS kernel path). Enable it with :func:`configure`, the
``REPRO_TRACE=1`` environment variable, or ``REPRO_TRACE_FILE=path``
(which also mirrors every event to a JSON-lines file; appends are
single ``O_APPEND`` writes, so concurrent worker processes interleave
whole lines, never tear them).

Invariant: tracing observes, it never perturbs. No RNG is consumed, no
store key changes, no result byte differs with tracing on versus off —
``tests/obs/test_parity.py`` holds the stack to that bitwise.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = [
    "configure",
    "enabled",
    "span",
    "event",
    "annotate",
    "events",
    "reset",
    "status",
    "DEFAULT_RING_SIZE",
]

#: Events kept in memory when no explicit ring size is configured.
DEFAULT_RING_SIZE = 4096

#: Environment switches, read once at import (worker processes inherit
#: them, so a traced run traces its pool workers too — into their own
#: process-local rings/sink lines).
ENV_ENABLE = "REPRO_TRACE"
ENV_TRACE_FILE = "REPRO_TRACE_FILE"
ENV_RING_SIZE = "REPRO_TRACE_RING"


class _State:
    __slots__ = ("enabled", "ring", "ring_size", "sink_path", "sink_fd", "sink_lock")

    def __init__(self) -> None:
        self.enabled = False
        self.ring_size = DEFAULT_RING_SIZE
        self.ring: "deque[dict]" = deque(maxlen=self.ring_size)
        self.sink_path: "str | None" = None
        self.sink_fd: "int | None" = None
        self.sink_lock = threading.Lock()


_STATE = _State()
_LOCAL = threading.local()


def _stack() -> "list[_Span]":
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def _next_id() -> str:
    n = getattr(_LOCAL, "seq", 0) + 1
    _LOCAL.seq = n
    return f"{os.getpid()}-{threading.get_ident()}-{n}"


def configure(
    *,
    enabled: "bool | None" = None,
    trace_file: "str | None" = None,
    ring_size: "int | None" = None,
) -> None:
    """Reconfigure tracing for this process.

    Parameters
    ----------
    enabled:
        Turn span/event capture on or off (``None`` leaves it alone).
        Setting a *trace_file* implies on.
    trace_file:
        Path of a JSON-lines sink mirroring every event, appended with
        single atomic writes (``""`` detaches the current sink).
    ring_size:
        Capacity of the in-memory ring buffer; resizing drops buffered
        events older than the new capacity retains.
    """
    if ring_size is not None:
        if ring_size <= 0:
            raise ValueError(f"ring_size must be positive, got {ring_size}")
        _STATE.ring_size = int(ring_size)
        _STATE.ring = deque(_STATE.ring, maxlen=_STATE.ring_size)
    if trace_file is not None:
        with _STATE.sink_lock:
            if _STATE.sink_fd is not None:
                os.close(_STATE.sink_fd)
                _STATE.sink_fd = None
                _STATE.sink_path = None
            if trace_file:
                _STATE.sink_fd = os.open(
                    trace_file, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
                _STATE.sink_path = trace_file
                _STATE.enabled = True
    if enabled is not None:
        _STATE.enabled = bool(enabled)


def enabled() -> bool:
    """Whether spans and events are currently captured."""
    return _STATE.enabled


def status() -> "dict[str, object]":
    """Tracing state for diagnostics (``repro --version`` prints this)."""
    return {
        "enabled": _STATE.enabled,
        "ring_size": _STATE.ring_size,
        "buffered": len(_STATE.ring),
        "trace_file": _STATE.sink_path,
    }


def reset() -> None:
    """Drop all buffered events (the sink file is left untouched)."""
    _STATE.ring.clear()


def events(*, clear: bool = False) -> "list[dict]":
    """The buffered events, oldest first; optionally drain the ring."""
    captured = list(_STATE.ring)
    if clear:
        _STATE.ring.clear()
    return captured


def _emit(record: "dict[str, object]") -> None:
    _STATE.ring.append(record)
    fd = _STATE.sink_fd
    if fd is not None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with _STATE.sink_lock:
            if _STATE.sink_fd is not None:
                os.write(_STATE.sink_fd, line.encode("utf-8"))


class _NullSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **fields: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "fields", "id", "parent", "depth", "_start", "_wall")

    def __init__(self, name: str, fields: "dict[str, object]"):
        self.name = name
        self.fields = fields
        self.id = ""
        self.parent: "str | None" = None
        self.depth = 0
        self._start = 0.0
        self._wall = 0.0

    def __enter__(self) -> "_Span":
        stack = _stack()
        self.id = _next_id()
        self.parent = stack[-1].id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def annotate(self, **fields: object) -> None:
        """Attach or update structured fields on this span."""
        self.fields.update(fields)

    def __exit__(self, exc_type: object, *exc_info: object) -> bool:
        duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        record: "dict[str, object]" = {
            "kind": "span",
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "depth": self.depth,
            "ts": self._wall,
            "dur_s": duration,
        }
        if exc_type is not None:
            record["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self.fields:
            record["fields"] = self.fields
        _emit(record)
        return False


def span(name: str, **fields: object) -> "_Span | _NullSpan":
    """A context manager timing one named unit of work.

    Disabled tracing returns a shared no-op instance; enabled tracing
    returns a fresh span that emits one structured event on exit with
    its monotonic duration, nesting linkage and *fields*. Use
    ``span.annotate(...)`` (or module-level :func:`annotate`) to attach
    results only known mid-flight (ESS, hit counts).
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return _Span(name, dict(fields))


def event(name: str, **fields: object) -> None:
    """Emit a point event (no duration) under the current span, if any."""
    if not _STATE.enabled:
        return
    stack = _stack()
    record: "dict[str, object]" = {
        "kind": "event",
        "name": name,
        "id": _next_id(),
        "parent": stack[-1].id if stack else None,
        "depth": len(stack),
        "ts": time.time(),
    }
    if fields:
        record["fields"] = fields
    _emit(record)


def annotate(**fields: object) -> None:
    """Attach *fields* to the innermost active span (no-op without one)."""
    if not _STATE.enabled:
        return
    stack = _stack()
    if stack:
        stack[-1].fields.update(fields)


def _init_from_environment() -> None:
    ring_env = os.environ.get(ENV_RING_SIZE, "").strip()
    if ring_env:
        try:
            configure(ring_size=int(ring_env))
        except ValueError:
            pass
    sink = os.environ.get(ENV_TRACE_FILE, "").strip()
    if sink:
        configure(trace_file=sink)
    flag = os.environ.get(ENV_ENABLE, "").strip().lower()
    if flag in {"1", "true", "yes", "on"}:
        configure(enabled=True)
    elif flag in {"0", "false", "no", "off"}:
        configure(enabled=False)


_init_from_environment()
