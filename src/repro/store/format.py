"""Store format v2: compact binary record segments.

A *segment* is an append-only file of length-prefixed frames, each frame
carrying one cached repetition record::

    segment file   = magic "RSEG2\\n" , frame*
    frame          = "FR" , length:uint32le , crc32:uint32le , body
    body           = canonical JSON bytes of {"key","index","payload"}

The body stays JSON — Python's ``repr``-based float serialisation is the
exact-round-trip guarantee every codec in :mod:`repro.store.codecs`
relies on, and format v2 must preserve it bit for bit. What changes is
everything around the payload: records are framed instead of line-based,
integrity is a CRC32 over the exact bytes instead of a re-serialising
checksum, and a record is located by ``(segment, offset, length)`` from
the index (:mod:`repro.store.index`) instead of by scanning a file.

Torn writes degrade safely: a frame whose length prefix runs past the
end of the file, or whose CRC does not match, is *absent* — the caller
treats it as a cache miss and recomputes, exactly like a truncated JSONL
line in format v1. Frames after a torn frame are unreachable by
scanning, but remain reachable through the index, which is published
only after the segment bytes are flushed.

Writers never share a segment: each :class:`SegmentWriter` owns a
freshly named file (``seg-<pid>-<random>.seg``), so concurrent processes
on a shared filesystem append without coordination. All cross-writer
merging happens in the index layer.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections.abc import Iterator, Mapping
from pathlib import Path

from repro.errors import StoreError
from repro.store.keys import canonical_json

__all__ = [
    "FRAME_HEADER",
    "FRAME_MAGIC",
    "SEGMENT_MAGIC",
    "SegmentWriter",
    "encode_frame",
    "new_segment_name",
    "read_frame",
    "scan_segment",
]

#: First bytes of every v2 segment file.
SEGMENT_MAGIC = b"RSEG2\n"
#: First bytes of every frame.
FRAME_MAGIC = b"FR"
#: Frame header layout after the magic: body length, CRC32 of the body.
FRAME_HEADER = struct.Struct("<II")


def encode_frame(key: str, index: int, payload: Mapping[str, object]) -> bytes:
    """Encode one record as a self-verifying binary frame.

    Parameters
    ----------
    key : str
        The record's :func:`~repro.store.keys.config_key`.
    index : int
        Repetition index within the key.
    payload : Mapping
        The codec-encoded repetition result (JSON-serialisable; floats
        round-trip exactly).

    Returns
    -------
    bytes
        ``FRAME_MAGIC + header + body``; ``len()`` of the result is the
        frame length the index records.
    """
    body = canonical_json({"key": key, "index": int(index), "payload": dict(payload)}).encode(
        "utf-8"
    )
    return FRAME_MAGIC + FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes) -> "tuple[str, int, dict[str, object]]":
    import json

    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise StoreError(f"unreadable frame body: {error}") from None
    if not isinstance(document, dict):
        raise StoreError("frame body is not an object")
    try:
        key = document["key"]
        index = document["index"]
        payload = document["payload"]
    except KeyError as error:
        raise StoreError(f"frame body misses field {error}") from None
    if not isinstance(index, int) or isinstance(index, bool) or index < 0:
        raise StoreError(f"frame index {index!r} is not a non-negative integer")
    if not isinstance(payload, dict):
        raise StoreError("frame payload is not an object")
    return str(key), index, payload


def read_frame(handle, offset: int, length: int) -> "tuple[str, int, dict[str, object]]":
    """Read and verify one frame at ``(offset, length)`` of an open segment.

    Parameters
    ----------
    handle : binary file object
        The segment, opened for reading.
    offset, length : int
        Index coordinates of the frame (as recorded at write time).

    Returns
    -------
    tuple
        ``(key, index, payload)``.

    Raises
    ------
    StoreError
        On a short read, wrong magic, CRC mismatch or undecodable body —
        all the ways a torn or bit-rotted frame announces itself.
    """
    handle.seek(offset)
    frame = handle.read(length)
    if len(frame) != length:
        raise StoreError(f"frame at offset {offset} truncated ({len(frame)}/{length} bytes)")
    prefix = len(FRAME_MAGIC) + FRAME_HEADER.size
    if frame[: len(FRAME_MAGIC)] != FRAME_MAGIC or length < prefix:
        raise StoreError(f"no frame magic at offset {offset}")
    body_length, crc = FRAME_HEADER.unpack_from(frame, len(FRAME_MAGIC))
    body = frame[prefix:]
    if body_length != len(body):
        raise StoreError(f"frame at offset {offset} has inconsistent length")
    if zlib.crc32(body) != crc:
        raise StoreError(f"frame at offset {offset} fails its CRC")
    return _decode_body(body)


def scan_segment(path: Path) -> "Iterator[tuple[int, int, str, int, dict[str, object]]]":
    """Walk a segment front to back, yielding every intact frame.

    Yields ``(offset, length, key, index, payload)`` per frame and stops
    silently at the first torn or corrupt frame (a crashed writer leaves
    at worst one truncated tail frame; anything beyond it is reachable
    only through the index). Used by migration, gc and index rebuilds —
    the hot read path goes through :func:`read_frame` instead.

    Raises
    ------
    StoreError
        When the file does not start with the segment magic (it is not a
        v2 segment at all).
    """
    prefix = len(FRAME_MAGIC) + FRAME_HEADER.size
    with path.open("rb") as handle:
        if handle.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
            raise StoreError(f"{path} is not a v2 record segment")
        offset = len(SEGMENT_MAGIC)
        while True:
            header = handle.read(prefix)
            if len(header) < prefix or header[: len(FRAME_MAGIC)] != FRAME_MAGIC:
                return
            body_length, crc = FRAME_HEADER.unpack_from(header, len(FRAME_MAGIC))
            body = handle.read(body_length)
            if len(body) != body_length or zlib.crc32(body) != crc:
                return
            try:
                key, index, payload = _decode_body(body)
            except StoreError:
                return
            yield offset, prefix + body_length, key, index, payload
            offset += prefix + body_length


def new_segment_name() -> str:
    """A collision-free segment file name unique to this writer."""
    return f"seg-{os.getpid()}-{os.urandom(4).hex()}.seg"


class SegmentWriter:
    """Append-only writer of one exclusively-owned segment file.

    Parameters
    ----------
    directory : Path
        The store's ``segments/`` directory (created on first append).
    name : str, optional
        Segment file name; defaults to a fresh :func:`new_segment_name`.

    Notes
    -----
    The file is created lazily on the first append and opened in append
    mode for the writer's lifetime. ``append`` returns the frame's
    ``(offset, length)`` so the caller can publish index entries *after*
    the bytes are flushed — the ordering that makes a crash between the
    two leave an unindexed (invisible) frame rather than a dangling
    index entry.
    """

    def __init__(self, directory: "Path | str", name: "str | None" = None):
        self.directory = Path(directory)
        self.name = name or new_segment_name()
        self._handle = None
        self._offset = 0

    @property
    def path(self) -> Path:
        """The segment file this writer owns."""
        return self.directory / self.name

    def _ensure_open(self) -> None:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("ab")
            if self._handle.tell() == 0:
                self._handle.write(SEGMENT_MAGIC)
                self._handle.flush()
            self._offset = self._handle.tell()

    def append(self, key: str, index: int, payload: Mapping[str, object]) -> "tuple[int, int]":
        """Append one record frame; returns its ``(offset, length)``."""
        self._ensure_open()
        frame = encode_frame(key, index, payload)
        offset = self._offset
        self._handle.write(frame)
        self._offset += len(frame)
        return offset, len(frame)

    def flush(self) -> None:
        """Flush buffered frames to the filesystem."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the segment (the writer may not append again)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
