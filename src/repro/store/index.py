"""The store's durable indexed catalog (format v2).

The catalog maps every config key to the ``(segment, offset, length)``
coordinates of its record frames, so listings, integrity checks, gc
planning and cache lookups are O(index) — no record segment is ever
opened just to answer "what is stored?".

The index is itself written with the same crash discipline as the
segments, in two tiers under ``<root>/index/``:

``delta-<segment>.jsonl``
    Append-only per-writer index segments. After flushing frames to its
    exclusively-owned record segment, a writer appends one checksummed
    JSON line per ``put`` batch to the delta file *named after that
    segment* — so delta files inherit the segment files' no-sharing
    property and need no locking. A torn tail line (crashed writer) is
    detected by its checksum and skipped; the frames it described are
    simply absent from the index, i.e. recomputable cache misses.

``catalog.json``
    The compacted sorted key → coordinates map, covering every delta
    absorbed so far. Published atomically via ``os.replace``, so readers
    see either the old or the new catalog, never a torn one. The file
    has two parts: a header line carrying a CRC32 of the body bytes and
    a per-key ``[records, bytes]`` summary, then the body with the full
    coordinate rows. Listings (``store ls``, ``describe``) parse only
    the header — O(keys), not O(entries) — while coordinate readers
    (``get``, ``gc``, ``verify``) parse the body. Compaction
    (:func:`compact`) merges the current catalog with all delta files
    and deletes the absorbed deltas; the store fences it with the
    :class:`~repro.store.leases.LeaseManager` so two maintenance
    processes never interleave.

Reading the index (:func:`load_index`) is always catalog + live deltas,
so a reader needs no compaction to see fresh writes. Entries are
*advisory*: every frame re-verifies its own CRC on read, so a stale or
duplicated index entry can at worst cause a recompute, never a wrong
result.
"""

from __future__ import annotations

import json
import os
import zlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError
from repro.store.keys import payload_checksum

__all__ = [
    "CATALOG_VERSION",
    "IndexEntry",
    "append_delta",
    "compact",
    "delta_path",
    "load_catalog",
    "load_catalog_summary",
    "load_deltas",
    "load_index",
    "write_catalog",
]

#: Catalog/delta document version (bumped on incompatible layout changes).
CATALOG_VERSION = 2


@dataclass(frozen=True)
class IndexEntry:
    """Coordinates of one record frame.

    Attributes
    ----------
    segment:
        Record segment file name under ``segments/``.
    offset, length:
        Byte position and size of the frame within the segment.
    index:
        Repetition index the frame stores (copied into the index so
        listings and prefix checks never open a segment).
    """

    segment: str
    offset: int
    length: int
    index: int

    def to_row(self) -> "list[object]":
        """Compact JSON row form ``[segment, offset, length, index]``."""
        return [self.segment, self.offset, self.length, self.index]

    @staticmethod
    def from_row(row: object) -> "IndexEntry":
        """Rebuild an entry from its row form (StoreError when malformed)."""
        if not isinstance(row, (list, tuple)) or len(row) != 4:
            raise StoreError(f"malformed index row: {row!r}")
        segment, offset, length, index = row
        try:
            return IndexEntry(
                segment=str(segment), offset=int(offset), length=int(length), index=int(index)
            )
        except (TypeError, ValueError) as error:
            raise StoreError(f"malformed index row {row!r}: {error}") from None


def delta_path(index_dir: Path, segment: str) -> Path:
    """The append-only index segment paired with record segment *segment*."""
    return index_dir / f"delta-{segment}.jsonl"


def catalog_path(index_dir: Path) -> Path:
    """The compacted catalog document."""
    return index_dir / "catalog.json"


def append_delta(
    index_dir: Path, segment: str, entries: "Mapping[str, Iterable[IndexEntry]]"
) -> None:
    """Publish one ``put`` batch to *segment*'s index segment.

    The line is appended only after the record frames it describes are
    flushed; a crash before this call leaves unindexed (invisible)
    frames, a crash during it leaves a checksum-failing torn line —
    either way the index never points at bytes that were not written.
    """
    payload = {
        "segment": segment,
        "keys": {key: [entry.to_row() for entry in batch] for key, batch in entries.items()},
    }
    line = json.dumps(
        {"v": CATALOG_VERSION, "check": payload_checksum(payload), "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    index_dir.mkdir(parents=True, exist_ok=True)
    with delta_path(index_dir, segment).open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()


def _read_delta(path: Path) -> "dict[str, list[IndexEntry]]":
    entries: "dict[str, list[IndexEntry]]" = {}
    try:
        text = path.read_text()
    except OSError:
        return entries
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line: the writer crashed mid-append
        if not isinstance(document, dict) or "payload" not in document:
            continue
        payload = document["payload"]
        if document.get("check") != payload_checksum(payload):
            continue
        keys = payload.get("keys")
        if not isinstance(keys, dict):
            continue
        for key, rows in keys.items():
            if not isinstance(rows, list):
                continue
            batch = entries.setdefault(str(key), [])
            for row in rows:
                try:
                    batch.append(IndexEntry.from_row(row))
                except StoreError:
                    continue
    return entries


def _summarise(batch: "list[IndexEntry]") -> "list[int]":
    """Per-key ``[records, bytes]`` under last-entry-wins semantics."""
    winners: "dict[int, int]" = {}
    for entry in batch:
        winners[entry.index] = entry.length
    return [len(winners), sum(winners.values())]


def _read_catalog_parts(index_dir: Path) -> "tuple[dict | None, bytes]":
    """The catalog's verified ``(header, body_bytes)``; ``(None, b"")`` when
    the file is absent, torn or fails its CRC."""
    try:
        blob = catalog_path(index_dir).read_bytes()
    except OSError:
        return None, b""
    header_bytes, sep, body = blob.partition(b"\n")
    if not sep:
        return None, b""
    try:
        header = json.loads(header_bytes)
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None, b""
    if not isinstance(header, dict) or header.get("crc") != zlib.crc32(body):
        return None, b""
    return header, body


def load_catalog_summary(index_dir: Path) -> "dict[str, tuple[int, int]]":
    """Per-key ``(records, bytes)`` from the catalog header alone.

    This is the O(keys) listing path: no coordinate row is parsed, no
    :class:`IndexEntry` constructed. Empty when the catalog is absent or
    torn (callers fall back to an empty index, same as
    :func:`load_catalog`).
    """
    header, _ = _read_catalog_parts(index_dir)
    summary = header.get("summary") if header else None
    if not isinstance(summary, dict):
        return {}
    parsed: "dict[str, tuple[int, int]]" = {}
    for key, pair in summary.items():
        if (
            isinstance(pair, list)
            and len(pair) == 2
            and all(isinstance(v, int) and not isinstance(v, bool) for v in pair)
        ):
            parsed[str(key)] = (pair[0], pair[1])
    return parsed


def load_catalog(index_dir: Path) -> "dict[str, list[IndexEntry]]":
    """The compacted catalog's key → entries map (empty when absent/torn)."""
    _, body = _read_catalog_parts(index_dir)
    if not body:
        return {}
    try:
        document = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    keys = document.get("keys") if isinstance(document, dict) else None
    if not isinstance(keys, dict):
        return {}
    catalog: "dict[str, list[IndexEntry]]" = {}
    for key, rows in keys.items():
        if not isinstance(rows, list):
            continue
        batch: "list[IndexEntry]" = []
        for row in rows:
            try:
                batch.append(IndexEntry.from_row(row))
            except StoreError:
                continue
        if batch:
            catalog[str(key)] = batch
    return catalog


def write_catalog(index_dir: Path, catalog: "Mapping[str, Iterable[IndexEntry]]") -> Path:
    """Atomically publish a compacted catalog (sorted keys, CRC-checked)."""
    batches = {key: batch for key in sorted(catalog) if (batch := list(catalog[key]))}
    body = json.dumps(
        {"keys": {key: [entry.to_row() for entry in batch] for key, batch in batches.items()}},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8") + b"\n"
    header = {
        "v": CATALOG_VERSION,
        "crc": zlib.crc32(body),
        "summary": {key: _summarise(batch) for key, batch in batches.items()},
    }
    index_dir.mkdir(parents=True, exist_ok=True)
    path = catalog_path(index_dir)
    tmp = path.with_suffix(f".tmp-{os.getpid()}-{os.urandom(2).hex()}")
    tmp.write_bytes(
        json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n" + body
    )
    os.replace(tmp, path)
    return path


def load_deltas(index_dir: Path) -> "dict[str, list[IndexEntry]]":
    """Entries published in live (not yet compacted) delta files only.

    Listings use this to decide which keys need the full coordinate
    merge: a key with no delta entries is fully described by the catalog
    header's summary.
    """
    merged: "dict[str, list[IndexEntry]]" = {}
    if index_dir.is_dir():
        for path in sorted(index_dir.glob("delta-*.jsonl")):
            for key, batch in _read_delta(path).items():
                merged.setdefault(key, []).extend(batch)
    return merged


def load_index(index_dir: Path) -> "dict[str, list[IndexEntry]]":
    """The full current index: compacted catalog merged with live deltas.

    Freshly computed on every call (no caching), so a reader always sees
    the latest published writes of every process sharing the store.
    Duplicate coordinates are possible when a recompute re-stored an
    index that already had an entry; all of them are valid (records are
    pure functions of their ``(key, index)``), and the reader's
    last-entry-wins merge matches v1's last-line-wins semantics.
    """
    merged = {key: list(batch) for key, batch in load_catalog(index_dir).items()}
    for key, batch in load_deltas(index_dir).items():
        merged.setdefault(key, []).extend(batch)
    return merged


def compact(index_dir: Path) -> "dict[str, int]":
    """Fold every delta file into the catalog and delete the absorbed deltas.

    Callers must fence this with the store's maintenance lease: two
    concurrent compactions could each absorb-and-delete deltas the other
    never read. A writer racing the compaction can lose freshly appended
    delta lines (its open handle keeps writing to the unlinked file) —
    that demotes cached repetitions to recomputable misses, never
    corrupts results, and is why compaction runs only inside explicit
    maintenance commands, not on the write path.

    Returns
    -------
    dict
        Counters: ``deltas_absorbed``, ``keys`` and ``entries`` in the
        published catalog.
    """
    merged = load_index(index_dir)
    deltas = sorted(index_dir.glob("delta-*.jsonl")) if index_dir.is_dir() else []
    write_catalog(index_dir, merged)
    for path in deltas:
        try:
            path.unlink()
        except OSError:
            pass
    return {
        "deltas_absorbed": len(deltas),
        "keys": len(merged),
        "entries": sum(len(batch) for batch in merged.values()),
    }
