"""Cache-aware repetition fan-out.

:func:`map_repetitions_cached` is the single integration point between the
experiments layer and the artifact store: it looks the run's config key up
in the store, decodes the repetitions already on disk, dispatches *only*
the misses through :func:`~repro.experiments.runner.map_repetitions`, and
``put``s the freshly computed records — preserving seed order throughout,
so the merged result list (and therefore every artifact derived from it)
is bitwise identical to an uncached run at any worker count.

Codecs are a pair of functions per experiment: ``encode`` maps one
repetition result to a JSON-serialisable payload, ``decode`` inverts it.
Python's JSON round-trips finite floats exactly (``repr``-based), so a
decoded result aggregates to bitwise-identical artifacts.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any, TypeVar

import numpy as np

from repro.obs import trace as _obs_trace
from repro.store.store import ArtifactStore

__all__ = ["map_repetitions_cached"]

T = TypeVar("T")


def map_repetitions_cached(
    fn: "Callable[[Any, np.random.SeedSequence], T]",
    context: Any,
    seeds: Sequence[np.random.SeedSequence],
    *,
    workers: "int | str | None" = None,
    store: ArtifactStore | None = None,
    key: str | None = None,
    encode: "Callable[[T], dict] | None" = None,
    decode: "Callable[[dict], T] | None" = None,
    progress: "Callable[[int, int], None] | None" = None,
) -> "list[T]":
    """Evaluate ``fn(context, seed)`` per seed, serving cached repetitions.

    Parameters
    ----------
    fn, context, seeds, workers:
        Exactly as for :func:`~repro.experiments.runner.map_repetitions`;
        with ``store=None`` the call degenerates to it.
    store : ArtifactStore, optional
        The artifact store to consult and extend.
    key : str, optional
        The run's :func:`~repro.store.keys.config_key`. Required with a
        store: it must capture everything ``fn(context, ·)`` depends on
        besides the seed.
    encode, decode : callable, optional
        The experiment's repetition codec. Required with a store.
    progress : callable, optional
        Invoked with ``(done, total)`` as repetitions complete; cached
        repetitions are reported immediately, before any miss simulates.

    Returns
    -------
    list
        Results in seed order — bitwise independent of which repetitions
        came from the cache, and of the worker count.
    """
    # Imported here, not at module level: the experiments package imports
    # this module (through repro.experiments.coverage), so a top-level
    # import of repro.experiments.runner would be circular.
    from repro.experiments.runner import map_repetitions

    if store is None:
        return map_repetitions(fn, context, seeds, workers=workers, progress=progress)
    if key is None or encode is None or decode is None:
        raise ValueError("a store-backed run needs key=, encode= and decode=")
    store.touched_keys.add(key)
    cached = store.get(key)
    results: "list[T | None]" = [None] * len(seeds)
    miss_indices: "list[int]" = []
    for index in range(len(seeds)):
        payload = cached.get(index)
        if payload is None:
            miss_indices.append(index)
        else:
            results[index] = decode(payload)
    hits = len(seeds) - len(miss_indices)
    store.stats.hits += hits
    store.stats.misses += len(miss_indices)
    _obs_trace.annotate(cache_hits=hits, cache_misses=len(miss_indices))
    if progress is not None and hits:
        progress(hits, len(seeds))
    if miss_indices:
        missing_seeds = [seeds[i] for i in miss_indices]
        sub_progress = None
        if progress is not None:
            total = len(seeds)
            sub_progress = lambda done, _t: progress(hits + done, total)  # noqa: E731
        computed = map_repetitions(
            fn, context, missing_seeds, workers=workers, progress=sub_progress
        )
        fresh: "dict[int, dict]" = {}
        for index, value in zip(miss_indices, computed):
            results[index] = value
            fresh[index] = encode(value)
        store.put(key, fresh)
    return results  # type: ignore[return-value]
