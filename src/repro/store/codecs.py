"""Shared JSON codecs for the result records the experiments cache.

Each experiment owns the codec of its repetition type (it knows what its
aggregation consumes); the building blocks common to several of them —
confidence intervals, plain estimation results, IMCIS results — live
here. Encoding uses plain ``float``/``int`` fields only, so a JSON
round-trip is bitwise exact for every finite value and stable for the
non-finite ones (``NaN`` effective sample sizes of all-zero-weight
samples survive as ``NaN``).

The IMCIS codec intentionally drops the random-search trace
(:attr:`~repro.imcis.algorithm.IMCISResult.search`): it is a per-run
diagnostic — row assignments and improvement history — that no experiment
artifact aggregates, and it dwarfs the scalar results it accompanies. A
decoded result therefore has ``search=None``; everything the coverage,
Table II and figure artifacts read is preserved exactly. The
cross-entropy codec similarly drops the refined proposal chain (a decoded
estimate has ``proposal=None``): the scalar results and per-round
diagnostics are what the matrix artifacts aggregate.
"""

from __future__ import annotations

from repro.imcis.algorithm import IMCISResult
from repro.importance.cross_entropy import CrossEntropyEstimate
from repro.importance.imc import IMCEstimate
from repro.smc.results import ConfidenceInterval, EstimationResult

__all__ = [
    "decode_ce_estimate",
    "decode_estimation_result",
    "decode_imc_estimate",
    "decode_imcis_result",
    "decode_interval",
    "encode_ce_estimate",
    "encode_estimation_result",
    "encode_imc_estimate",
    "encode_imcis_result",
    "encode_interval",
]


def encode_interval(interval: ConfidenceInterval) -> "dict[str, float]":
    """Encode a confidence interval to a JSON-serialisable payload."""
    return {
        "low": interval.low,
        "high": interval.high,
        "confidence": interval.confidence,
    }


def decode_interval(payload: "dict[str, float]") -> ConfidenceInterval:
    """Invert :func:`encode_interval`."""
    return ConfidenceInterval(
        low=payload["low"], high=payload["high"], confidence=payload["confidence"]
    )


def encode_estimation_result(result: EstimationResult) -> "dict[str, object]":
    """Encode an :class:`~repro.smc.results.EstimationResult`."""
    return {
        "estimate": result.estimate,
        "std_dev": result.std_dev,
        "n_samples": result.n_samples,
        "interval": encode_interval(result.interval),
        "n_satisfied": result.n_satisfied,
        "n_undecided": result.n_undecided,
        "method": result.method,
        "ess": result.ess,
    }


def decode_estimation_result(payload: "dict[str, object]") -> EstimationResult:
    """Invert :func:`encode_estimation_result`."""
    return EstimationResult(
        estimate=payload["estimate"],
        std_dev=payload["std_dev"],
        n_samples=payload["n_samples"],
        interval=decode_interval(payload["interval"]),
        n_satisfied=payload["n_satisfied"],
        n_undecided=payload["n_undecided"],
        method=payload["method"],
        ess=payload["ess"],
    )


def encode_imcis_result(result: IMCISResult) -> "dict[str, object]":
    """Encode an :class:`~repro.imcis.algorithm.IMCISResult` (sans search)."""
    return {
        "interval": encode_interval(result.interval),
        "gamma_min": result.gamma_min,
        "sigma_min": result.sigma_min,
        "gamma_max": result.gamma_max,
        "sigma_max": result.sigma_max,
        "center_estimate": encode_estimation_result(result.center_estimate),
        "n_total": result.n_total,
        "n_satisfied": result.n_satisfied,
        "n_undecided": result.n_undecided,
    }


def encode_ce_estimate(estimate: CrossEntropyEstimate) -> "dict[str, object]":
    """Encode a :class:`~repro.importance.cross_entropy.CrossEntropyEstimate`.

    The refined proposal chain is dropped (see module docstring); every
    scalar — the final estimate, the budget split, the per-round success
    counts — round-trips exactly.
    """
    return {
        "result": encode_estimation_result(estimate.result),
        "rounds": estimate.rounds,
        "refine_samples": estimate.refine_samples,
        "final_samples": estimate.final_samples,
        "n_satisfied_per_round": list(estimate.n_satisfied_per_round),
    }


def decode_ce_estimate(payload: "dict[str, object]") -> CrossEntropyEstimate:
    """Invert :func:`encode_ce_estimate` (``proposal`` comes back ``None``)."""
    return CrossEntropyEstimate(
        result=decode_estimation_result(payload["result"]),
        proposal=None,
        rounds=payload["rounds"],
        refine_samples=payload["refine_samples"],
        final_samples=payload["final_samples"],
        n_satisfied_per_round=tuple(payload["n_satisfied_per_round"]),
    )


def encode_imc_estimate(estimate: IMCEstimate) -> "dict[str, object]":
    """Encode an :class:`~repro.importance.imc.IMCEstimate` (lossless)."""
    return {
        "result": encode_estimation_result(estimate.result),
        "batches_run": estimate.batches_run,
        "batches_max": estimate.batches_max,
        "replica_budget": estimate.replica_budget,
        "replica_total": estimate.replica_total,
        "kappa": estimate.kappa,
    }


def decode_imc_estimate(payload: "dict[str, object]") -> IMCEstimate:
    """Invert :func:`encode_imc_estimate`."""
    return IMCEstimate(
        result=decode_estimation_result(payload["result"]),
        batches_run=payload["batches_run"],
        batches_max=payload["batches_max"],
        replica_budget=payload["replica_budget"],
        replica_total=payload["replica_total"],
        kappa=payload["kappa"],
    )


def decode_imcis_result(payload: "dict[str, object]") -> IMCISResult:
    """Invert :func:`encode_imcis_result` (``search`` comes back ``None``)."""
    return IMCISResult(
        interval=decode_interval(payload["interval"]),
        gamma_min=payload["gamma_min"],
        sigma_min=payload["sigma_min"],
        gamma_max=payload["gamma_max"],
        sigma_max=payload["sigma_max"],
        center_estimate=decode_estimation_result(payload["center_estimate"]),
        search=None,
        n_total=payload["n_total"],
        n_satisfied=payload["n_satisfied"],
        n_undecided=payload["n_undecided"],
    )
