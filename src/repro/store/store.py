"""The on-disk experiment artifact store.

Layout under the store root::

    <root>/
        records/<key[:2]>/<key>.jsonl    one line per cached repetition
        runs/<run-id>.json               one manifest per resumable run

Record files are JSON-lines: append-only, human-inspectable, and safe to
extend — a crashed run leaves at worst one truncated trailing line, which
the integrity checksum detects and the next run recomputes. Every line
carries the config key it belongs to and a checksum of its payload, so a
file that was moved, concatenated or bit-rotted is caught on load instead
of silently corrupting an experiment.

Run manifests make interrupted runs resumable: ``repro matrix --store DIR``
writes a manifest up front (run id, full configuration, touched keys) and
``repro matrix --resume RUN-ID --store DIR`` replays the same configuration
— every repetition that made it to disk is a cache hit, only the remainder
simulates.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError
from repro.store.keys import payload_checksum

__all__ = [
    "ArtifactStore",
    "RunManifest",
    "RunRecord",
    "StoreStats",
]

#: Record-line format version (see also ``keys.STORE_SCHEMA``, which is
#: part of the key itself).
RECORD_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """One cached repetition result.

    Attributes
    ----------
    key:
        The :func:`~repro.store.keys.config_key` the record belongs to.
    index:
        Repetition index — the position of the repetition's seed in the
        root ``SeedSequence.spawn`` order.
    payload:
        The codec-encoded repetition result (JSON-serialisable).
    """

    key: str
    index: int
    payload: "dict[str, object]"

    def to_line(self) -> str:
        """Serialise to one JSON line with an integrity checksum."""
        document = {
            "v": RECORD_VERSION,
            "key": self.key,
            "index": self.index,
            "check": payload_checksum(self.payload),
            "payload": self.payload,
        }
        return json.dumps(document, sort_keys=True)

    @staticmethod
    def from_line(line: str, expected_key: str) -> "RunRecord":
        """Parse and verify one record line.

        Raises
        ------
        StoreError
            On malformed JSON, a missing field, a record filed under the
            wrong key, or a payload that fails its checksum.
        """
        try:
            document = json.loads(line)
        except json.JSONDecodeError as error:
            raise StoreError(f"unreadable record line: {error}") from None
        if not isinstance(document, dict):
            raise StoreError(f"record line is not an object: {line[:60]!r}")
        try:
            version = document["v"]
            key = document["key"]
            index = document["index"]
            check = document["check"]
            payload = document["payload"]
        except KeyError as error:
            raise StoreError(f"record line misses field {error}") from None
        if version != RECORD_VERSION:
            raise StoreError(f"unsupported record version {version!r}")
        if key != expected_key:
            raise StoreError(f"record carries key {key!r}, expected {expected_key!r}")
        if not isinstance(index, int) or index < 0:
            raise StoreError(f"record index {index!r} is not a non-negative integer")
        if payload_checksum(payload) != check:
            raise StoreError(f"record {key}:{index} fails its payload checksum")
        return RunRecord(key=key, index=index, payload=payload)


@dataclass
class StoreStats:
    """Hit/miss accounting of one process's store usage."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def summary(self) -> str:
        """One-line human-readable account."""
        text = f"{self.hits} cached, {self.misses} computed"
        if self.corrupt:
            text += f", {self.corrupt} corrupt record(s) ignored"
        return text


@dataclass(frozen=True)
class RunManifest:
    """The resumable description of one store-backed run.

    Attributes
    ----------
    run_id:
        Identifier handed to ``--resume``.
    command:
        The producing entry point (e.g. ``"matrix"``).
    config:
        JSON round-trip of the run's full configuration — enough to
        reconstruct it exactly.
    status:
        ``"running"`` until the run completes, then ``"complete"``.
    keys:
        Config keys the run touched (filled in on completion; used by
        ``repro store gc`` to tell live records from orphans).
    created:
        ISO-8601 creation timestamp (metadata only — never hashed).
    """

    run_id: str
    command: str
    config: "dict[str, object]"
    status: str = "running"
    keys: "tuple[str, ...]" = ()
    created: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "run_id": self.run_id,
                "command": self.command,
                "config": self.config,
                "status": self.status,
                "keys": list(self.keys),
                "created": self.created,
            },
            indent=2,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "RunManifest":
        try:
            document = json.loads(text)
            return RunManifest(
                run_id=document["run_id"],
                command=document["command"],
                config=dict(document["config"]),
                status=document["status"],
                keys=tuple(document.get("keys", ())),
                created=document.get("created", ""),
            )
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise StoreError(f"unreadable run manifest: {error}") from None


class ArtifactStore:
    """Content-addressed JSON-lines store of per-repetition results.

    Parameters
    ----------
    root : path-like
        Directory holding the store (created lazily on first write).
    strict : bool, optional
        When True, a corrupt record line raises
        :class:`~repro.errors.StoreError`; the default treats it as a
        cache miss (the repetition is recomputed and re-appended), which
        is always safe because records are pure functions of their key
        and index.

    Notes
    -----
    The store is *append-only* per record file. Duplicate indices can
    therefore exist (e.g. after a corrupt line is recomputed); the last
    valid occurrence wins on load, and ``gc`` compacts files down to one
    line per index.
    """

    def __init__(self, root: "Path | str", strict: bool = False):
        self.root = Path(root)
        self.strict = strict
        self.stats = StoreStats()
        self.touched_keys: "set[str]" = set()

    # -- coercion ---------------------------------------------------------

    @staticmethod
    def coerce(store: "ArtifactStore | Path | str | None") -> "ArtifactStore | None":
        """Accept a store, a path to one, or ``None`` (no caching)."""
        if store is None or isinstance(store, ArtifactStore):
            return store
        return ArtifactStore(store)

    # -- record files -----------------------------------------------------

    def record_path(self, key: str) -> Path:
        """The JSON-lines file of *key* (two-level fan-out by key prefix)."""
        return self.root / "records" / key[:2] / f"{key}.jsonl"

    def load(self, key: str) -> "dict[int, dict[str, object]]":
        """All valid cached payloads of *key*, indexed by repetition.

        Corrupt lines are counted in :attr:`stats` and skipped (or raised
        under ``strict=True``).
        """
        path = self.record_path(key)
        if not path.exists():
            return {}
        payloads: "dict[int, dict[str, object]]" = {}
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = RunRecord.from_line(line, expected_key=key)
            except StoreError as error:
                if self.strict:
                    raise StoreError(f"{path}:{lineno}: {error}") from None
                self.stats.corrupt += 1
                continue
            payloads[record.index] = record.payload
        return payloads

    def append(self, key: str, payloads: "Mapping[int, dict[str, object]]") -> None:
        """Append one record line per ``(index, payload)`` entry."""
        if not payloads:
            return
        path = self.record_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            RunRecord(key=key, index=index, payload=dict(payload)).to_line()
            for index, payload in sorted(payloads.items())
        ]
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        self.stats.writes += len(lines)

    def keys(self) -> "list[str]":
        """Every key with a record file, sorted."""
        records = self.root / "records"
        if not records.is_dir():
            return []
        return sorted(path.stem for path in records.glob("*/*.jsonl"))

    def record_count(self, key: str) -> int:
        """Stored record lines of *key*, without decoding any payload.

        A cheap newline count for listings: duplicates and corrupt lines
        are included (``verify``/``gc`` are the integrity-aware tools),
        so on a store that has never needed recovery it equals the
        number of cached repetitions.
        """
        path = self.record_path(key)
        if not path.exists():
            return 0
        return path.read_bytes().count(b"\n")

    def verify(self, key: str) -> "tuple[int, list[str]]":
        """Validate one record file.

        Returns
        -------
        tuple
            ``(valid_record_count, problems)`` where *problems* is one
            human-readable line per corrupt record.
        """
        path = self.record_path(key)
        if not path.exists():
            return 0, [f"no record file for key {key}"]
        valid: "set[int]" = set()
        problems: "list[str]" = []
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                valid.add(RunRecord.from_line(line, expected_key=key).index)
            except StoreError as error:
                problems.append(f"line {lineno}: {error}")
        return len(valid), problems

    # -- run manifests ----------------------------------------------------

    def _runs_dir(self) -> Path:
        return self.root / "runs"

    def manifest_path(self, run_id: str) -> Path:
        """The manifest file of *run_id*."""
        return self._runs_dir() / f"{run_id}.json"

    def new_run_id(self, command: str) -> str:
        """A fresh collision-free run identifier (e.g. ``matrix-1a2b3c4d``)."""
        while True:
            run_id = f"{command}-{os.urandom(4).hex()}"
            if not self.manifest_path(run_id).exists():
                return run_id

    def save_manifest(self, manifest: RunManifest) -> Path:
        """Write (or overwrite) *manifest* under ``runs/``."""
        path = self.manifest_path(manifest.run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(manifest.to_json() + "\n")
        return path

    def load_manifest(self, run_id: str) -> RunManifest:
        """Load the manifest of *run_id* (StoreError when absent)."""
        path = self.manifest_path(run_id)
        if not path.exists():
            known = ", ".join(m.run_id for m in self.list_manifests()) or "none"
            raise StoreError(f"no run {run_id!r} under {self.root} (known: {known})")
        return RunManifest.from_json(path.read_text())

    def list_manifests(self) -> "list[RunManifest]":
        """Every stored manifest, sorted by run id."""
        runs = self._runs_dir()
        if not runs.is_dir():
            return []
        return [RunManifest.from_json(p.read_text()) for p in sorted(runs.glob("*.json"))]

    # -- maintenance ------------------------------------------------------

    def referenced_keys(self) -> "set[str]":
        """Keys referenced by any run manifest."""
        return {key for manifest in self.list_manifests() for key in manifest.keys}

    def compact(self, key: str) -> "tuple[int, int]":
        """Rewrite one record file: drop corrupt lines and duplicates.

        Returns
        -------
        tuple
            ``(records_kept, lines_dropped)``.
        """
        path = self.record_path(key)
        if not path.exists():
            return 0, 0
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        kept: "dict[int, RunRecord]" = {}
        dropped = 0
        for line in lines:
            try:
                record = RunRecord.from_line(line, expected_key=key)
            except StoreError:
                dropped += 1
                continue
            kept[record.index] = record
        if dropped == 0 and len(kept) == len(lines):
            return len(kept), 0
        if kept:
            body = "\n".join(kept[i].to_line() for i in sorted(kept)) + "\n"
            path.write_text(body)
        else:
            path.unlink()
        return len(kept), dropped + (len(lines) - dropped - len(kept))

    def gc(self, drop_unreferenced: bool = False) -> "dict[str, int]":
        """Compact every record file; optionally delete orphaned keys.

        Parameters
        ----------
        drop_unreferenced : bool, optional
            Also delete record files whose key no run manifest references
            (records written by ad-hoc library calls rather than CLI runs
            count as unreferenced — hence opt-in). Skipped whenever any
            manifest is still ``"running"``: an interrupted or in-flight
            run records its touched keys only on completion, so its
            resumable records would be indistinguishable from orphans.

        Returns
        -------
        dict
            Counters: ``records_kept``, ``lines_dropped``,
            ``files_deleted``, ``in_flight_runs``.
        """
        in_flight = sum(1 for m in self.list_manifests() if m.status == "running")
        referenced = None
        if drop_unreferenced and in_flight == 0:
            referenced = self.referenced_keys()
        kept_total = dropped_total = deleted = 0
        for key in self.keys():
            if referenced is not None and key not in referenced:
                self.record_path(key).unlink()
                deleted += 1
                continue
            kept, dropped = self.compact(key)
            kept_total += kept
            dropped_total += dropped
            if kept == 0 and not self.record_path(key).exists():
                deleted += 1
        # Remove now-empty fan-out directories so ls stays tidy.
        records = self.root / "records"
        if records.is_dir():
            for bucket in records.iterdir():
                if bucket.is_dir() and not any(bucket.iterdir()):
                    bucket.rmdir()
        return {
            "records_kept": kept_total,
            "lines_dropped": dropped_total,
            "files_deleted": deleted,
            "in_flight_runs": in_flight,
        }
