"""The on-disk experiment artifact store.

Format v2 layout under the store root::

    <root>/
        FORMAT                           format marker ("2")
        segments/seg-<writer>.seg        binary record segments (format.py)
        index/catalog.json               compacted key → coordinates map
        index/delta-<segment>.jsonl      append-only per-writer index segments
        runs/<run-id>.json               one manifest per resumable run
        records/<key[:2]>/<key>.jsonl    legacy v1 records (read-through)

Records are framed binary (length prefix + CRC32 around the exact
canonical-JSON payload bytes — the float round-trip guarantees of
:mod:`repro.store.codecs` are untouched) and located through the indexed
catalog of :mod:`repro.store.index`, so listings, lookups and gc are
O(index) instead of O(scan). Writes are concurrency-safe across
processes on a shared filesystem: every writer appends to its own
segment and publishes index entries only after the bytes are flushed;
index compaction and migration are fenced by the store's
:class:`~repro.store.leases.LeaseManager`.

Legacy v1 stores (JSON-lines under ``records/``) are read transparently
— a v2 store merges legacy records under its own, and ``repro store
migrate`` rewrites them into segments once and for all. Passing
``version=1`` pins a store to the pure v1 engine (used by migration
tests and parity baselines).

The public contract is the versioned facade: :meth:`ArtifactStore.open`
plus ``get`` / ``put`` / ``iter_keys`` / ``stats`` (and the maintenance
verbs ``describe``/``verify``/``gc``/``migrate``). The v1 surface that
leaked into other layers — ``record_path``, ``load``, ``append``,
``keys``, ``record_count``, ``compact`` — still works but warns
``DeprecationWarning`` once per process and will be removed in 1.0.

Run manifests are unchanged from v1: ``repro matrix --store DIR`` writes
a manifest up front and ``--resume RUN-ID`` replays the same
configuration — every repetition that made it to disk is a cache hit.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.store import index as index_module
from repro.store.format import SegmentWriter, read_frame, scan_segment
from repro.store.index import (
    IndexEntry,
    append_delta,
    load_catalog_summary,
    load_deltas,
    load_index,
    write_catalog,
)
from repro.store.keys import payload_checksum
from repro.store.leases import LeaseManager

__all__ = [
    "ArtifactStore",
    "FORMAT_VERSION",
    "RunManifest",
    "RunRecord",
    "StoreStats",
]

#: Legacy (v1) record-line format version (see also ``keys.STORE_SCHEMA``,
#: which is part of the key itself and deliberately did NOT change with
#: the v2 layout — keys address *content*, not storage format).
RECORD_VERSION = 1

#: Current on-disk store format.
FORMAT_VERSION = 2

#: Lease/lock name fencing index compaction, gc rewrites and migration.
MAINTENANCE_LEASE = "store-maintenance"

# Names already warned about (deprecations fire once per process).
_DEPRECATION_SEEN: "set[str]" = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _DEPRECATION_SEEN:
        return
    _DEPRECATION_SEEN.add(name)
    warnings.warn(
        f"ArtifactStore.{name} is deprecated since repro 0.8 and will be removed "
        f"in 1.0; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class RunRecord:
    """One cached repetition result (the legacy v1 line form).

    Format v2 stores the same ``(key, index, payload)`` triple as a
    binary frame (:mod:`repro.store.format`); this class remains the
    reader/writer of v1 JSON lines, used by the legacy read-through,
    migration and forced-v1 stores.

    Attributes
    ----------
    key:
        The :func:`~repro.store.keys.config_key` the record belongs to.
    index:
        Repetition index — the position of the repetition's seed in the
        root ``SeedSequence.spawn`` order.
    payload:
        The codec-encoded repetition result (JSON-serialisable).
    """

    key: str
    index: int
    payload: "dict[str, object]"

    def to_line(self) -> str:
        """Serialise to one JSON line with an integrity checksum."""
        document = {
            "v": RECORD_VERSION,
            "key": self.key,
            "index": self.index,
            "check": payload_checksum(self.payload),
            "payload": self.payload,
        }
        return json.dumps(document, sort_keys=True)

    @staticmethod
    def from_line(line: str, expected_key: str) -> "RunRecord":
        """Parse and verify one record line.

        Raises
        ------
        StoreError
            On malformed JSON, a missing field, a record filed under the
            wrong key, or a payload that fails its checksum.
        """
        try:
            document = json.loads(line)
        except json.JSONDecodeError as error:
            raise StoreError(f"unreadable record line: {error}") from None
        if not isinstance(document, dict):
            raise StoreError(f"record line is not an object: {line[:60]!r}")
        try:
            version = document["v"]
            key = document["key"]
            index = document["index"]
            check = document["check"]
            payload = document["payload"]
        except KeyError as error:
            raise StoreError(f"record line misses field {error}") from None
        if version != RECORD_VERSION:
            raise StoreError(f"unsupported record version {version!r}")
        if key != expected_key:
            raise StoreError(f"record carries key {key!r}, expected {expected_key!r}")
        if not isinstance(index, int) or index < 0:
            raise StoreError(f"record index {index!r} is not a non-negative integer")
        if payload_checksum(payload) != check:
            raise StoreError(f"record {key}:{index} fails its payload checksum")
        return RunRecord(key=key, index=index, payload=payload)


#: StoreStats fields mirrored into the metrics registry on increment, so
#: store accounting shows up on ``/metrics`` and survives the worker
#: process boundary via the registry snapshot/merge transport (the plain
#: dataclass fields stay the per-handle truth they always were).
_STATS_COUNTERS = {
    field: _obs_metrics.registry().counter(
        f"repro_store_{field}_total",
        f"Artifact-store {field.replace('_', ' ')} across every handle "
        "of this process.",
    )
    for field in ("hits", "misses", "writes", "corrupt", "segment_reads")
}


@dataclass
class StoreStats:
    """Hit/miss accounting of one process's store usage.

    ``segment_reads`` counts record frames read from v2 segments — the
    observable proof that listings (``describe``/``iter_keys``) are
    O(index): they leave the counter untouched.

    Every positive increment of a field is mirrored into the process
    metrics registry (``repro_store_<field>_total``), so ``/metrics``
    and cross-process merges see store accounting without the call
    sites changing.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    segment_reads: int = 0

    def __setattr__(self, name: str, value: object) -> None:
        counter = _STATS_COUNTERS.get(name)
        if counter is not None:
            delta = value - getattr(self, name, 0)  # type: ignore[operator]
            if delta > 0:
                counter.inc(delta)
        object.__setattr__(self, name, value)

    def summary(self) -> str:
        """One-line human-readable account."""
        text = f"{self.hits} cached, {self.misses} computed"
        if self.corrupt:
            text += f", {self.corrupt} corrupt record(s) ignored"
        return text


@dataclass(frozen=True)
class RunManifest:
    """The resumable description of one store-backed run.

    Attributes
    ----------
    run_id:
        Identifier handed to ``--resume``.
    command:
        The producing entry point (e.g. ``"matrix"``).
    config:
        JSON round-trip of the run's full configuration — enough to
        reconstruct it exactly.
    status:
        ``"running"`` until the run completes, then ``"complete"``.
    keys:
        Config keys the run touched (filled in on completion; used by
        ``repro store gc`` to tell live records from orphans).
    created:
        ISO-8601 creation timestamp (metadata only — never hashed).
    """

    run_id: str
    command: str
    config: "dict[str, object]"
    status: str = "running"
    keys: "tuple[str, ...]" = ()
    created: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "run_id": self.run_id,
                "command": self.command,
                "config": self.config,
                "status": self.status,
                "keys": list(self.keys),
                "created": self.created,
            },
            indent=2,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "RunManifest":
        try:
            document = json.loads(text)
            return RunManifest(
                run_id=document["run_id"],
                command=document["command"],
                config=dict(document["config"]),
                status=document["status"],
                keys=tuple(document.get("keys", ())),
                created=document.get("created", ""),
            )
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise StoreError(f"unreadable run manifest: {error}") from None


class ArtifactStore:
    """Content-addressed store of per-repetition results (format v2).

    Parameters
    ----------
    root : path-like
        Directory holding the store (created lazily on first write).
    strict : bool, optional
        When True, a corrupt record raises
        :class:`~repro.errors.StoreError`; the default treats it as a
        cache miss (the repetition is recomputed and re-stored), which
        is always safe because records are pure functions of their key
        and index.
    version : int, optional
        ``None`` (default) auto-detects from the store's ``FORMAT``
        marker and falls back to the current format for fresh
        directories. ``1`` pins the pure v1 JSON-lines engine (raises on
        a directory that already holds v2 data); ``2`` is the current
        engine, which also reads v1 records through transparently.

    Notes
    -----
    The store is *append-only* on the write path. Duplicate entries for
    one ``(key, index)`` can exist (e.g. after a corrupt frame is
    recomputed); any valid copy is equally good — records are pure
    functions of their coordinates — and ``gc`` compacts the store down
    to one frame per index.
    """

    def __init__(
        self, root: "Path | str", strict: bool = False, version: "int | None" = None
    ):
        self.root = Path(root)
        self.strict = strict
        self.stats = StoreStats()
        self.touched_keys: "set[str]" = set()
        self._writer: "SegmentWriter | None" = None
        detected = self._detect_version()
        if version is None:
            version = detected
        if version == 1 and detected != 1 and self._has_v2_layout():
            raise StoreError(
                f"{self.root} already holds format v2 data and cannot be opened with version=1"
            )
        if version not in (1, FORMAT_VERSION):
            raise StoreError(f"unsupported store format version {version!r}")
        self.version = version

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls, root: "Path | str", version: "int | None" = None, strict: bool = False
    ) -> "ArtifactStore":
        """Open (or lazily create) the store at *root*.

        This is the blessed constructor of the public API; together with
        :meth:`get`, :meth:`put`, :meth:`iter_keys` and :attr:`stats` it
        forms the store's stable contract.
        """
        return cls(root, strict=strict, version=version)

    @staticmethod
    def coerce(store: "ArtifactStore | Path | str | None") -> "ArtifactStore | None":
        """Accept a store, a path to one, or ``None`` (no caching)."""
        if store is None or isinstance(store, ArtifactStore):
            return store
        return ArtifactStore(store)

    def close(self) -> None:
        """Flush and release this process's open segment writer, if any."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass  # interpreter shutdown: file machinery may be gone

    # -- layout ------------------------------------------------------------

    def _marker_path(self) -> Path:
        return self.root / "FORMAT"

    def _segments_dir(self) -> Path:
        return self.root / "segments"

    def _index_dir(self) -> Path:
        return self.root / "index"

    def _records_dir(self) -> Path:
        return self.root / "records"

    def _detect_version(self) -> int:
        try:
            detected = int(self._marker_path().read_text().strip())
        except (OSError, ValueError):
            return FORMAT_VERSION
        if detected not in (1, FORMAT_VERSION):
            raise StoreError(
                f"{self.root} uses store format {detected}, newer than this "
                f"code understands (max {FORMAT_VERSION})"
            )
        return detected

    def _has_v2_layout(self) -> bool:
        return self._segments_dir().is_dir() or self._index_dir().is_dir()

    def _write_marker(self) -> None:
        path = self._marker_path()
        if path.exists():
            return
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{os.urandom(2).hex()}")
        tmp.write_text(f"{FORMAT_VERSION}\n")
        os.replace(tmp, path)

    def _maintenance_lock(self):
        """Cross-process critical section for index/segment rewrites.

        Rides the fleet's :class:`LeaseManager` lock files so store
        maintenance and fleet coordination share one fencing mechanism
        (and one ``fleet/locks/`` directory).
        """
        return LeaseManager(self.root / "fleet").locked(MAINTENANCE_LEASE)

    # -- legacy (v1) engine ------------------------------------------------

    def _legacy_record_path(self, key: str) -> Path:
        return self._records_dir() / key[:2] / f"{key}.jsonl"

    def _legacy_load(self, key: str) -> "dict[int, dict[str, object]]":
        path = self._legacy_record_path(key)
        if not path.exists():
            return {}
        payloads: "dict[int, dict[str, object]]" = {}
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = RunRecord.from_line(line, expected_key=key)
            except StoreError as error:
                if self.strict:
                    raise StoreError(f"{path}:{lineno}: {error}") from None
                self.stats.corrupt += 1
                continue
            payloads[record.index] = record.payload
        return payloads

    def _legacy_append(self, key: str, payloads: "Mapping[int, dict[str, object]]") -> None:
        path = self._legacy_record_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            RunRecord(key=key, index=index, payload=dict(payload)).to_line()
            for index, payload in sorted(payloads.items())
        ]
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        self.stats.writes += len(lines)

    def _legacy_keys(self) -> "list[str]":
        records = self._records_dir()
        if not records.is_dir():
            return []
        return sorted(path.stem for path in records.glob("*/*.jsonl"))

    def _legacy_compact(self, key: str) -> "tuple[int, int]":
        path = self._legacy_record_path(key)
        if not path.exists():
            return 0, 0
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        kept: "dict[int, RunRecord]" = {}
        dropped = 0
        for line in lines:
            try:
                record = RunRecord.from_line(line, expected_key=key)
            except StoreError:
                dropped += 1
                continue
            kept[record.index] = record
        if dropped == 0 and len(kept) == len(lines):
            return len(kept), 0
        if kept:
            body = "\n".join(kept[i].to_line() for i in sorted(kept)) + "\n"
            path.write_text(body)
        else:
            path.unlink()
        return len(kept), dropped + (len(lines) - dropped - len(kept))

    # -- public contract: get / put / iter_keys ----------------------------

    def get(self, key: str) -> "dict[int, dict[str, object]]":
        """All valid cached payloads of *key*, indexed by repetition.

        Frames are located through the index and re-verified (CRC) on
        read; corrupt or unreachable frames count into :attr:`stats` and
        are skipped (or raise under ``strict=True``). On a v2 store that
        still holds legacy v1 lines for *key*, both are merged with the
        v2 copy winning (they are bitwise-identical by construction).
        """
        with _obs_trace.span("store-get", key=key[:12]) as sp:
            if self.version == 1:
                payloads = self._legacy_load(key)
                sp.annotate(frames=len(payloads))
                return payloads
            payloads = self._get_v2(key)
            sp.annotate(frames=len(payloads))
            return payloads

    def _get_v2(self, key: str) -> "dict[int, dict[str, object]]":
        payloads = self._legacy_load(key)
        entries = load_index(self._index_dir()).get(key, [])
        by_segment: "dict[str, list[IndexEntry]]" = {}
        for entry in entries:
            by_segment.setdefault(entry.segment, []).append(entry)
        for segment in sorted(by_segment):
            path = self._segments_dir() / segment
            try:
                handle = path.open("rb")
            except OSError:
                if self.strict:
                    raise StoreError(f"index references missing segment {segment}") from None
                continue  # segment gc'd under us: entries demote to misses
            with handle:
                for entry in by_segment[segment]:
                    self.stats.segment_reads += 1
                    try:
                        frame_key, frame_index, payload = read_frame(
                            handle, entry.offset, entry.length
                        )
                        if frame_key != key or frame_index != entry.index:
                            raise StoreError(
                                f"frame at {segment}@{entry.offset} stores "
                                f"{frame_key}:{frame_index}, index says {key}:{entry.index}"
                            )
                    except StoreError as error:
                        if self.strict:
                            raise StoreError(f"{path}: {error}") from None
                        self.stats.corrupt += 1
                        continue
                    payloads[frame_index] = payload
        return payloads

    def put(self, key: str, payloads: "Mapping[int, dict[str, object]]") -> None:
        """Store one frame per ``(index, payload)`` entry.

        Appends to this process's exclusively-owned segment, flushes,
        then publishes the index entries — so a crash at any point
        leaves either invisible bytes or a detectable torn line, never a
        record that reads back wrong. Safe to call concurrently from any
        number of processes sharing the store directory.
        """
        if not payloads:
            return
        with _obs_trace.span("store-put", key=key[:12], frames=len(payloads)):
            if self.version == 1:
                self._legacy_append(key, payloads)
                return
            if self._writer is None:
                self._writer = SegmentWriter(self._segments_dir())
            batch: "list[IndexEntry]" = []
            for index, payload in sorted(payloads.items()):
                offset, length = self._writer.append(key, int(index), dict(payload))
                batch.append(
                    IndexEntry(
                        segment=self._writer.name, offset=offset, length=length, index=index
                    )
                )
            self._writer.flush()
            append_delta(self._index_dir(), self._writer.name, {key: batch})
            self._write_marker()
            self.stats.writes += len(batch)

    def iter_keys(self) -> "Iterator[str]":
        """Every stored key (index union legacy read-through), sorted.

        Reads the catalog header and live deltas only — no coordinate
        row is parsed and no segment opened.
        """
        if self.version == 1:
            yield from self._legacy_keys()
            return
        known = set(load_catalog_summary(self._index_dir()))
        known.update(load_deltas(self._index_dir()))
        known.update(self._legacy_keys())
        yield from sorted(known)

    # -- O(index) introspection --------------------------------------------

    @staticmethod
    def _winners(entries: "list[IndexEntry]") -> "dict[int, IndexEntry]":
        winners: "dict[int, IndexEntry]" = {}
        for entry in entries:
            winners[entry.index] = entry
        return winners

    def _fold_legacy(
        self, key: str, records: int, nbytes: int, legacy_path: "Path | None"
    ) -> "dict[str, object]":
        legacy = False
        if legacy_path is not None and legacy_path.exists():
            legacy = True
            records = max(records, legacy_path.read_bytes().count(b"\n"))
            nbytes += legacy_path.stat().st_size
        return {"key": key, "records": records, "bytes": nbytes, "legacy": legacy}

    def _key_summary(
        self, key: str, entries: "list[IndexEntry]", legacy_path: "Path | None"
    ) -> "dict[str, object]":
        winners = self._winners(entries)
        nbytes = sum(entry.length for entry in winners.values())
        return self._fold_legacy(key, len(winners), nbytes, legacy_path)

    def key_stats(self, key: str) -> "dict[str, object]":
        """Record count and byte size of *key*, from the index alone.

        Never opens a record segment; on legacy read-through keys the
        line count of the v1 file is folded in (a file stat plus a
        newline count, exactly what v1 listings did).
        """
        entries = [] if self.version == 1 else load_index(self._index_dir()).get(key, [])
        return self._key_summary(key, entries, self._legacy_record_path(key))

    def describe(self) -> "dict[str, object]":
        """The machine-readable store summary (O(index), no segment reads).

        This document is the shared contract of ``repro store ls
        --format json`` and the service's ``GET /v1/store`` endpoint —
        field names here are stable API:

        ``root``, ``format``
            Store directory and on-disk format version.
        ``runs``
            One entry per run manifest: ``run_id``, ``command``,
            ``status``, ``keys``, ``created``.
        ``records``
            One entry per stored key: ``key``, ``records``, ``bytes``,
            ``legacy`` (True while v1 lines remain unmigrated).
        ``totals``
            ``runs``, ``keys``, ``records``, ``bytes``.

        On a compacted store this is O(keys): summaries come from the
        catalog header without parsing a single coordinate row. Keys
        with live (uncompacted) delta entries fall back to the full
        index merge — still no segment is ever opened.
        """
        if self.version == 1:
            summaries, deltas = {}, {}
        else:
            summaries = load_catalog_summary(self._index_dir())
            deltas = load_deltas(self._index_dir())
        legacy = {key: self._legacy_record_path(key) for key in self._legacy_keys()}
        full_index = None
        records = []
        for key in sorted(set(summaries) | set(deltas) | set(legacy)):
            if key in deltas:
                if full_index is None:
                    full_index = load_index(self._index_dir())
                records.append(self._key_summary(key, full_index.get(key, []), legacy.get(key)))
            elif key in summaries:
                count, nbytes = summaries[key]
                records.append(self._fold_legacy(key, count, nbytes, legacy.get(key)))
            else:
                records.append(self._key_summary(key, [], legacy.get(key)))
        runs = [
            {
                "run_id": manifest.run_id,
                "command": manifest.command,
                "status": manifest.status,
                "keys": len(manifest.keys),
                "created": manifest.created,
            }
            for manifest in self.list_manifests()
        ]
        return {
            "root": str(self.root),
            "format": self.version,
            "runs": runs,
            "records": records,
            "totals": {
                "runs": len(runs),
                "keys": len(records),
                "records": sum(e["records"] for e in records),
                "bytes": sum(e["bytes"] for e in records),
            },
        }

    def verify(self, key: str) -> "tuple[int, list[str]]":
        """Validate every stored copy of *key*'s records.

        Returns
        -------
        tuple
            ``(valid_record_count, problems)`` where *problems* is one
            human-readable line per corrupt frame or record line.
        """
        valid: "set[int]" = set()
        problems: "list[str]" = []
        entries = [] if self.version == 1 else load_index(self._index_dir()).get(key, [])
        for entry in entries:
            path = self._segments_dir() / entry.segment
            try:
                with path.open("rb") as handle:
                    self.stats.segment_reads += 1
                    frame_key, frame_index, _ = read_frame(handle, entry.offset, entry.length)
                if frame_key != key or frame_index != entry.index:
                    raise StoreError(
                        f"frame stores {frame_key}:{frame_index}, "
                        f"index says {key}:{entry.index}"
                    )
            except OSError:
                problems.append(f"{entry.segment}@{entry.offset}: segment missing")
                continue
            except StoreError as error:
                problems.append(f"{entry.segment}@{entry.offset}: {error}")
                continue
            valid.add(entry.index)
        legacy_path = self._legacy_record_path(key)
        if legacy_path.exists():
            for lineno, line in enumerate(legacy_path.read_text().splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    valid.add(RunRecord.from_line(line, expected_key=key).index)
                except StoreError as error:
                    problems.append(f"line {lineno}: {error}")
        elif not entries:
            return 0, [f"no records for key {key}"]
        return len(valid), problems

    # -- run manifests ----------------------------------------------------

    def _runs_dir(self) -> Path:
        return self.root / "runs"

    def manifest_path(self, run_id: str) -> Path:
        """The manifest file of *run_id*."""
        return self._runs_dir() / f"{run_id}.json"

    def new_run_id(self, command: str) -> str:
        """A fresh collision-free run identifier (e.g. ``matrix-1a2b3c4d``)."""
        while True:
            run_id = f"{command}-{os.urandom(4).hex()}"
            if not self.manifest_path(run_id).exists():
                return run_id

    def save_manifest(self, manifest: RunManifest) -> Path:
        """Write (or overwrite) *manifest* under ``runs/``."""
        path = self.manifest_path(manifest.run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(manifest.to_json() + "\n")
        return path

    def load_manifest(self, run_id: str) -> RunManifest:
        """Load the manifest of *run_id* (StoreError when absent)."""
        path = self.manifest_path(run_id)
        if not path.exists():
            known = ", ".join(m.run_id for m in self.list_manifests()) or "none"
            raise StoreError(f"no run {run_id!r} under {self.root} (known: {known})")
        return RunManifest.from_json(path.read_text())

    def list_manifests(self) -> "list[RunManifest]":
        """Every stored manifest, sorted by run id."""
        runs = self._runs_dir()
        if not runs.is_dir():
            return []
        return [RunManifest.from_json(p.read_text()) for p in sorted(runs.glob("*.json"))]

    # -- maintenance ------------------------------------------------------

    def referenced_keys(self) -> "set[str]":
        """Keys referenced by any run manifest."""
        return {key for manifest in self.list_manifests() for key in manifest.keys}

    def drop(self, key: str) -> int:
        """Forget every stored record of *key*; returns records dropped.

        On v2 the key is removed from the index (its frames become dead
        bytes reclaimed by the next ``gc``); any legacy v1 file is
        deleted outright.
        """
        dropped = 0
        legacy_path = self._legacy_record_path(key)
        if legacy_path.exists():
            dropped += legacy_path.read_bytes().count(b"\n")
            legacy_path.unlink()
            if not any(legacy_path.parent.iterdir()):
                legacy_path.parent.rmdir()
        if self.version >= FORMAT_VERSION:
            with self._maintenance_lock():
                merged = load_index(self._index_dir())
                if key in merged:
                    dropped += len(self._winners(merged.pop(key)))
                    write_catalog(self._index_dir(), merged)
                    for path in self._index_dir().glob("delta-*.jsonl"):
                        path.unlink(missing_ok=True)
        return dropped

    def gc(
        self,
        drop_unreferenced: bool = False,
        dry_run: bool = False,
        older_than: "float | None" = None,
    ) -> "dict[str, int]":
        """Compact the store; optionally delete orphaned keys.

        Parameters
        ----------
        drop_unreferenced : bool, optional
            Also delete records whose key no run manifest references
            (records written by ad-hoc library calls rather than CLI runs
            count as unreferenced — hence opt-in). Skipped whenever any
            manifest is still ``"running"``: an interrupted or in-flight
            run records its touched keys only on completion, so its
            resumable records would be indistinguishable from orphans.
        dry_run : bool, optional
            Report what would happen without modifying the store in any
            way — strictly read-only: no lock is taken, no directory is
            created, no file is touched.
        older_than : float, optional
            Age threshold in seconds: segments and record files modified
            more recently are left exactly as they are (their keys are
            spared entirely), so a gc can run beside live writers
            without churning fresh data.

        Returns
        -------
        dict
            Counters: ``records_kept``, ``lines_dropped``,
            ``keys_dropped``, ``files_deleted``, ``segments_removed``,
            ``in_flight_runs``, ``dry_run``.
        """
        in_flight = sum(1 for m in self.list_manifests() if m.status == "running")
        referenced: "set[str] | None" = None
        if drop_unreferenced and in_flight == 0:
            referenced = self.referenced_keys()
        cutoff = None if older_than is None else time.time() - float(older_than)
        counters = {
            "records_kept": 0,
            "lines_dropped": 0,
            "keys_dropped": 0,
            "files_deleted": 0,
            "segments_removed": 0,
            "in_flight_runs": in_flight,
            "dry_run": int(bool(dry_run)),
        }
        if self.version >= FORMAT_VERSION:
            if dry_run:
                self._gc_v2(referenced, cutoff, dry_run, counters)
            else:
                with self._maintenance_lock():
                    self._gc_v2(referenced, cutoff, dry_run, counters)
        self._gc_legacy(referenced, cutoff, dry_run, counters)
        return counters

    def _gc_v2(
        self,
        referenced: "set[str] | None",
        cutoff: "float | None",
        dry_run: bool,
        counters: "dict[str, int]",
    ) -> None:
        index_dir = self._index_dir()
        segments_dir = self._segments_dir()
        merged = load_index(index_dir)
        if not merged and not segments_dir.is_dir():
            return
        existing = (
            {path.name for path in segments_dir.glob("*.seg")} if segments_dir.is_dir() else set()
        )

        def is_recent(segment: str) -> bool:
            if cutoff is None:
                return False
            try:
                return (segments_dir / segment).stat().st_mtime >= cutoff
            except OSError:
                return False

        recent = {segment for segment in existing if is_recent(segment)}
        keep: "dict[str, dict[int, IndexEntry]]" = {}
        for key, entries in merged.items():
            winners = self._winners(entries)
            counters["lines_dropped"] += len(entries) - len(winners)
            touches_recent = any(entry.segment in recent for entry in winners.values())
            if referenced is not None and key not in referenced and not touches_recent:
                counters["keys_dropped"] += 1
                continue
            keep[key] = winners

        if dry_run:
            for winners in keep.values():
                counters["records_kept"] += len(winners)
            # Every old segment disappears: rewritten ones are replaced by
            # the fresh compact segment, unreferenced ones are orphans.
            counters["segments_removed"] += len(existing - recent)
            return

        self.close()  # never rewrite under our own open writer
        writer: "SegmentWriter | None" = None
        catalog: "dict[str, list[IndexEntry]]" = {}
        for key in sorted(keep):
            rewritten: "list[IndexEntry]" = []
            for index in sorted(keep[key]):
                entry = keep[key][index]
                if entry.segment in recent:
                    rewritten.append(entry)
                    counters["records_kept"] += 1
                    continue
                path = segments_dir / entry.segment
                try:
                    with path.open("rb") as handle:
                        self.stats.segment_reads += 1
                        frame_key, frame_index, payload = read_frame(
                            handle, entry.offset, entry.length
                        )
                    if frame_key != key or frame_index != entry.index:
                        raise StoreError("index/frame mismatch")
                except (OSError, StoreError):
                    counters["lines_dropped"] += 1
                    continue
                if writer is None:
                    writer = SegmentWriter(segments_dir)
                offset, length = writer.append(key, index, payload)
                rewritten.append(
                    IndexEntry(segment=writer.name, offset=offset, length=length, index=index)
                )
                counters["records_kept"] += 1
            if rewritten:
                catalog[key] = rewritten
        if writer is not None:
            writer.flush()
            writer.close()
        deltas = sorted(index_dir.glob("delta-*.jsonl")) if index_dir.is_dir() else []
        write_catalog(index_dir, catalog)
        for path in deltas:
            if cutoff is not None:
                try:
                    if path.stat().st_mtime >= cutoff:
                        continue  # a live writer may still hold this delta open
                except OSError:
                    continue
            path.unlink(missing_ok=True)
        for segment in sorted(existing - recent):
            (segments_dir / segment).unlink(missing_ok=True)
            counters["segments_removed"] += 1

    def _gc_legacy(
        self,
        referenced: "set[str] | None",
        cutoff: "float | None",
        dry_run: bool,
        counters: "dict[str, int]",
    ) -> None:
        records = self._records_dir()
        if not records.is_dir():
            return
        for key in self._legacy_keys():
            path = self._legacy_record_path(key)
            if cutoff is not None:
                try:
                    if path.stat().st_mtime >= cutoff:
                        counters["records_kept"] += path.read_bytes().count(b"\n")
                        continue
                except OSError:
                    continue
            if referenced is not None and key not in referenced:
                counters["files_deleted"] += 1
                counters["keys_dropped"] += 1
                if not dry_run:
                    path.unlink()
                continue
            if dry_run:
                lines = [line for line in path.read_text().splitlines() if line.strip()]
                kept: "set[int]" = set()
                dropped = 0
                for line in lines:
                    try:
                        kept.add(RunRecord.from_line(line, expected_key=key).index)
                    except StoreError:
                        dropped += 1
                counters["records_kept"] += len(kept)
                counters["lines_dropped"] += dropped + (len(lines) - dropped - len(kept))
                if not kept:
                    counters["files_deleted"] += 1
                continue
            kept_count, dropped_count = self._legacy_compact(key)
            counters["records_kept"] += kept_count
            counters["lines_dropped"] += dropped_count
            if kept_count == 0 and not path.exists():
                counters["files_deleted"] += 1
        if not dry_run:
            for bucket in records.iterdir():
                if bucket.is_dir() and not any(bucket.iterdir()):
                    bucket.rmdir()

    def migrate(self, keep_v1: bool = False) -> "dict[str, int]":
        """Rewrite every legacy v1 record into format v2 segments.

        Idempotent: records whose ``(key, index)`` is already indexed
        are skipped, and a second run over a fully migrated store is a
        no-op. Fenced by the maintenance lease, so concurrent migrations
        (or a migration racing a gc) serialise.

        Parameters
        ----------
        keep_v1 : bool, optional
            Leave the legacy ``records/`` files in place (the v2 engine
            ignores records it already indexed). Default deletes them.

        Returns
        -------
        dict
            Counters: ``keys_migrated``, ``records_migrated``,
            ``lines_skipped`` (corrupt or already indexed),
            ``files_removed``.
        """
        if self.version == 1:
            raise StoreError("cannot migrate a store pinned to version=1; reopen it unpinned")
        counters = {
            "keys_migrated": 0,
            "records_migrated": 0,
            "lines_skipped": 0,
            "files_removed": 0,
        }
        with self._maintenance_lock():
            existing = load_index(self._index_dir())
            writer: "SegmentWriter | None" = None
            fresh: "dict[str, list[IndexEntry]]" = {}
            removable: "list[Path]" = []
            for key in self._legacy_keys():
                path = self._legacy_record_path(key)
                already = set(self._winners(existing.get(key, [])))
                payloads: "dict[int, dict[str, object]]" = {}
                lines_seen = 0
                for line in path.read_text().splitlines():
                    if not line.strip():
                        continue
                    lines_seen += 1
                    try:
                        record = RunRecord.from_line(line, expected_key=key)
                    except StoreError:
                        counters["lines_skipped"] += 1
                        continue
                    payloads[record.index] = record.payload
                migrated_any = False
                for index in sorted(payloads):
                    if index in already:
                        counters["lines_skipped"] += 1
                        continue
                    if writer is None:
                        writer = SegmentWriter(self._segments_dir())
                    offset, length = writer.append(key, index, payloads[index])
                    fresh.setdefault(key, []).append(
                        IndexEntry(
                            segment=writer.name, offset=offset, length=length, index=index
                        )
                    )
                    counters["records_migrated"] += 1
                    migrated_any = True
                if migrated_any:
                    counters["keys_migrated"] += 1
                removable.append(path)
            if writer is not None:
                writer.flush()
                writer.close()
            # Publish index entries for the migrated frames, folding live
            # deltas into the catalog while we hold the lease anyway.
            merged = load_index(self._index_dir())
            for key, batch in fresh.items():
                merged.setdefault(key, [])[:0] = batch  # existing v2 entries keep winning
            if merged or fresh or self._has_v2_layout() or removable:
                write_catalog(self._index_dir(), merged)
                for path in self._index_dir().glob("delta-*.jsonl"):
                    path.unlink(missing_ok=True)
            self._write_marker()
            if not keep_v1:
                for path in removable:
                    path.unlink(missing_ok=True)
                    counters["files_removed"] += 1
                records = self._records_dir()
                if records.is_dir():
                    for bucket in records.iterdir():
                        if bucket.is_dir() and not any(bucket.iterdir()):
                            bucket.rmdir()
                    if not any(records.iterdir()):
                        records.rmdir()
        return counters

    def compact_index(self) -> "dict[str, int]":
        """Fold live index deltas into the catalog (lease-fenced)."""
        with self._maintenance_lock():
            return index_module.compact(self._index_dir())

    # -- deprecated v1 surface --------------------------------------------

    def record_path(self, key: str) -> Path:
        """Deprecated: the legacy v1 JSON-lines path of *key*.

        .. deprecated:: 0.8
            Format v2 stores records in shared segments; there is no
            per-key file. Use :meth:`get`/:meth:`put`/:meth:`key_stats`.
        """
        _warn_deprecated("record_path", "get()/put()/key_stats()")
        return self._legacy_record_path(key)

    def load(self, key: str) -> "dict[int, dict[str, object]]":
        """Deprecated alias of :meth:`get`.

        .. deprecated:: 0.8
        """
        _warn_deprecated("load", "get()")
        return self.get(key)

    def append(self, key: str, payloads: "Mapping[int, dict[str, object]]") -> None:
        """Deprecated alias of :meth:`put`.

        .. deprecated:: 0.8
        """
        _warn_deprecated("append", "put()")
        self.put(key, payloads)

    def keys(self) -> "list[str]":
        """Deprecated: every stored key, as a list.

        .. deprecated:: 0.8
            Use :meth:`iter_keys`.
        """
        _warn_deprecated("keys", "iter_keys()")
        return list(self.iter_keys())

    def record_count(self, key: str) -> int:
        """Deprecated: stored record count of *key*.

        .. deprecated:: 0.8
            Use ``key_stats(key)["records"]``.
        """
        _warn_deprecated("record_count", 'key_stats(key)["records"]')
        return int(self.key_stats(key)["records"])

    def compact(self, key: str) -> "tuple[int, int]":
        """Deprecated: per-key compaction.

        .. deprecated:: 0.8
            Use :meth:`gc` — v2 compaction is store-wide.
        """
        _warn_deprecated("compact", "gc()")
        if self.version == 1 or self._legacy_record_path(key).exists():
            return self._legacy_compact(key)
        return len(self._winners(load_index(self._index_dir()).get(key, []))), 0
