"""Content-addressed experiment artifact store.

The Section VI experiments are repetition-heavy Monte Carlo fan-outs in
which every repetition is a pure function of ``(configuration, seed)``.
This package caches those repetitions on disk so reruns only simulate
what actually changed:

* :mod:`repro.store.keys` — stable :func:`config_key` hashing of study
  content, estimator configuration, root seed entropy and code versions;
* :mod:`repro.store.store` — the :class:`ArtifactStore` itself
  (JSON-lines record files, integrity checksums, run manifests,
  hit/miss accounting, gc);
* :mod:`repro.store.cache` — :func:`map_repetitions_cached`, the drop-in
  cache-aware variant of the parallel repetition fan-out;
* :mod:`repro.store.leases` — durable, fenced job leases (owner id,
  heartbeat deadline, monotonic fencing token) the fleet layer
  coordinates multi-process workers through;
* :mod:`repro.store.codecs` — exact-round-trip JSON codecs for the
  result records the experiments aggregate.

The experiments (:mod:`repro.experiments`) accept ``store=`` and consult
the cache before dispatching repetitions; the CLI exposes ``--store``,
``--resume`` and the ``repro store ls|inspect|gc`` maintenance commands.
Cached and freshly computed repetitions produce bitwise-identical
artifacts at every worker count.
"""

from repro.store.cache import map_repetitions_cached
from repro.store.keys import (
    STORE_SCHEMA,
    canonical_json,
    code_versions,
    config_key,
    describe_study,
    fingerprint_array,
    fingerprint_chain,
    fingerprint_matrix,
    seed_entropy,
)
from repro.store.leases import Lease, LeaseManager, default_owner_id
from repro.store.store import ArtifactStore, RunManifest, RunRecord, StoreStats

__all__ = [
    "ArtifactStore",
    "Lease",
    "LeaseManager",
    "RunManifest",
    "RunRecord",
    "STORE_SCHEMA",
    "StoreStats",
    "canonical_json",
    "code_versions",
    "config_key",
    "default_owner_id",
    "describe_study",
    "fingerprint_array",
    "fingerprint_chain",
    "fingerprint_matrix",
    "map_repetitions_cached",
    "seed_entropy",
]
