"""Content-addressed experiment artifact store (format v2).

The Section VI experiments are repetition-heavy Monte Carlo fan-outs in
which every repetition is a pure function of ``(configuration, seed)``.
This package caches those repetitions on disk so reruns only simulate
what actually changed:

* :mod:`repro.store.keys` — stable :func:`config_key` hashing of study
  content, estimator configuration, root seed entropy and code versions;
* :mod:`repro.store.format` — binary record segments: length-prefixed,
  CRC-checked frames around the exact canonical-JSON payload bytes;
* :mod:`repro.store.index` — the durable indexed catalog (append-only
  per-writer index segments compacted into a sorted key → coordinates
  map) that makes listings, lookups and gc O(index);
* :mod:`repro.store.store` — the :class:`ArtifactStore` facade itself
  (versioned ``open``, ``get``/``put``/``iter_keys``/``stats``, run
  manifests, ``describe``/``verify``/``gc``/``migrate`` maintenance,
  transparent read-through of legacy v1 JSON-lines stores);
* :mod:`repro.store.cache` — :func:`map_repetitions_cached`, the drop-in
  cache-aware variant of the parallel repetition fan-out;
* :mod:`repro.store.leases` — durable, fenced job leases (owner id,
  heartbeat deadline, monotonic fencing token) the fleet layer and the
  store's own maintenance operations coordinate through;
* :mod:`repro.store.codecs` — exact-round-trip JSON codecs for the
  result records the experiments aggregate.

The experiments (:mod:`repro.experiments`) accept ``store=`` and consult
the cache before dispatching repetitions; the CLI exposes ``--store``,
``--resume`` and the ``repro store ls|inspect|gc|migrate`` maintenance
commands. Cached and freshly computed repetitions produce
bitwise-identical artifacts at every worker count, whether the records
were written by v2 or migrated from v1.

Deprecation policy
------------------
The blessed public surface is what this module re-exports. Within it,
:class:`ArtifactStore`'s stable contract is ``open``/``get``/``put``/
``iter_keys``/``key_stats``/``describe``/``stats`` plus the maintenance
verbs; the v1-era methods (``record_path``, ``load``, ``append``,
``keys``, ``record_count``, ``compact``) emit a ``DeprecationWarning``
once per process as of 0.8 and will be removed in 1.0. Anything not
re-exported here is internal and may change without notice.
"""

from repro.store.cache import map_repetitions_cached
from repro.store.format import SegmentWriter, scan_segment
from repro.store.index import IndexEntry
from repro.store.keys import (
    STORE_SCHEMA,
    canonical_json,
    code_versions,
    config_key,
    describe_study,
    fingerprint_array,
    fingerprint_chain,
    fingerprint_matrix,
    seed_entropy,
)
from repro.store.leases import Lease, LeaseManager, default_owner_id
from repro.store.store import (
    FORMAT_VERSION,
    ArtifactStore,
    RunManifest,
    RunRecord,
    StoreStats,
)

__all__ = [
    "ArtifactStore",
    "FORMAT_VERSION",
    "IndexEntry",
    "Lease",
    "LeaseManager",
    "RunManifest",
    "RunRecord",
    "STORE_SCHEMA",
    "SegmentWriter",
    "StoreStats",
    "canonical_json",
    "code_versions",
    "config_key",
    "default_owner_id",
    "describe_study",
    "fingerprint_array",
    "fingerprint_chain",
    "fingerprint_matrix",
    "map_repetitions_cached",
    "scan_segment",
    "seed_entropy",
]
