"""Durable job leases in the artifact store's manifest layer.

The fleet's coordination problem is the classic one: many worker
processes share one store directory, each queued job must be executed by
*exactly one* live worker at a time, and a worker that dies mid-job must
not strand its job forever. A :class:`Lease` solves all three:

* **exclusive claim** — at most one unexpired lease exists per name;
  :meth:`LeaseManager.claim` is atomic (an exclusive file lock guards the
  read-decide-write cycle), so a claim race between any number of
  workers yields exactly one owner;
* **heartbeats** — the owner renews the lease on a cadence well under
  its TTL (:meth:`LeaseManager.renew` pushes ``deadline`` forward); a
  worker that dies simply stops renewing, and once ``deadline`` passes
  the lease is claimable again;
* **fencing tokens** — every successful claim increments a per-name
  monotonic token, persisted across releases and expiries. A result
  commit quotes the token it ran under (:meth:`LeaseManager.validate`):
  a worker that lost its lease mid-run — paused, partitioned, or merely
  slow — holds a stale token and its write is rejected, so a re-claimed
  job can never be double-committed out of order.

Lease records live under ``<root>/leases/`` beside the store's run
manifests and carry the same checksum discipline as record lines: a
torn or bit-rotted lease file is detected on read and treated as absent
(its fencing lineage restarts — acceptable, because a store that loses
bytes has bigger problems, and the job-document state machine still
refuses terminal-state rollbacks).

The exclusive lock is :func:`fcntl.flock` on a per-name sidecar file:
kernel-released on process death (a SIGKILLed worker never wedges the
lock), correct across processes on one host and on lock-honouring
shared filesystems. Locks guard only the microsecond read-decide-write
critical section; *liveness* rides on the TTL, never on the lock.
"""

from __future__ import annotations

import json
import os
import socket
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path

import threading

from repro.errors import LeaseError, StaleLeaseError
from repro.obs import metrics as _obs_metrics
from repro.store.keys import payload_checksum

__all__ = [
    "Lease",
    "LeaseManager",
    "default_owner_id",
]

#: Lease record format version (bumped on incompatible layout changes).
LEASE_VERSION = 1

_METRIC_LEASE_CLAIMS = _obs_metrics.registry().counter(
    "repro_lease_claims_total",
    "Successful lease claims (first claims, re-claims and takeovers).",
)
_METRIC_LEASE_EXPIRIES = _obs_metrics.registry().counter(
    "repro_lease_expiries_total",
    "Claims that took over an expired (never released) lease.",
)

# flock is per open-file-description: a second open of the same lock file
# by the same process blocks against the first, so a naive context manager
# self-deadlocks when a caller nests critical sections (the fleet commits
# a job document and runs the fencing check under one lock). The registry
# below makes :meth:`LeaseManager.locked` re-entrant per thread while
# staying exclusive across threads and processes.
_LOCK_REGISTRY: "dict[str, threading.RLock]" = {}
_LOCK_REGISTRY_GUARD = threading.Lock()
_HELD = threading.local()


def default_owner_id() -> str:
    """A process-unique owner identity: ``host:pid:random``.

    The random suffix disambiguates PID reuse across worker restarts —
    two incarnations of the same PID must never look like one owner to
    the fencing checks.
    """
    return f"{socket.gethostname()}:{os.getpid()}:{os.urandom(3).hex()}"


@dataclass(frozen=True)
class Lease:
    """One lease record: who owns *name*, until when, under which token.

    Attributes
    ----------
    name:
        The leased resource (the fleet uses job ids).
    owner:
        Owner identity (see :func:`default_owner_id`).
    token:
        Fencing token — strictly increasing over every successful claim
        of *name*, including re-claims after expiry. Consumers must
        reject writes quoting a token older than the latest observed.
    deadline:
        Unix time the lease expires unless renewed.
    ttl:
        Seconds each claim/renewal extends the deadline by.
    released:
        True once the owner released the lease voluntarily; the record
        stays on disk to carry the token lineage forward.
    """

    name: str
    owner: str
    token: int
    deadline: float
    ttl: float
    released: bool = False

    def expired(self, now: float | None = None) -> bool:
        """Whether the lease no longer protects its resource."""
        return self.released or (time.time() if now is None else now) >= self.deadline

    def to_payload(self) -> "dict[str, object]":
        """JSON-serialisable form (inverted by :meth:`from_payload`)."""
        return {
            "name": self.name,
            "owner": self.owner,
            "token": self.token,
            "deadline": self.deadline,
            "ttl": self.ttl,
            "released": self.released,
        }

    @staticmethod
    def from_payload(payload: "dict[str, object]") -> "Lease":
        """Rebuild a lease from its stored payload."""
        try:
            return Lease(
                name=str(payload["name"]),
                owner=str(payload["owner"]),
                token=int(payload["token"]),  # type: ignore[arg-type]
                deadline=float(payload["deadline"]),  # type: ignore[arg-type]
                ttl=float(payload["ttl"]),  # type: ignore[arg-type]
                released=bool(payload.get("released", False)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise LeaseError(f"unreadable lease payload: {error}") from None


class LeaseManager:
    """Claim, renew, release and fence leases under one directory.

    Parameters
    ----------
    root : path-like
        Directory holding ``leases/`` and ``locks/`` (created lazily).
        The fleet passes its store's ``fleet/`` subdirectory.
    ttl : float, optional
        Seconds a claim or renewal keeps the lease alive. Owners should
        renew at a fraction of this (the fleet worker uses ``ttl / 3``).

    Notes
    -----
    All mutating operations run under an exclusive :func:`fcntl.flock`
    on a per-name sidecar lock file, making each one atomic with respect
    to every other process on the machine (or lock-honouring filesystem).
    """

    def __init__(self, root: "Path | str", ttl: float = 15.0):
        if ttl <= 0:
            raise LeaseError(f"lease ttl must be positive, got {ttl}")
        self.root = Path(root)
        self.ttl = float(ttl)

    # -- paths ------------------------------------------------------------

    def lease_path(self, name: str) -> Path:
        """The lease record file of *name*."""
        return self.root / "leases" / f"{name}.json"

    def _lock_path(self, name: str) -> Path:
        return self.root / "locks" / f"{name}.lock"

    @contextmanager
    def locked(self, name: str):
        """Exclusive cross-process critical section for *name*.

        A :func:`fcntl.flock`-backed context manager, re-entrant within
        a thread (nesting is common: the fleet validates a lease while
        already inside the job-document critical section) but exclusive
        across threads and across processes. The fleet layer reuses it
        to serialise job-document updates under the same per-name lock
        that guards the lease record.
        """
        import fcntl

        path = self._lock_path(name)
        key = str(path)
        with _LOCK_REGISTRY_GUARD:
            local = _LOCK_REGISTRY.setdefault(key, threading.RLock())
        depths = getattr(_HELD, "depths", None)
        if depths is None:
            depths = _HELD.depths = {}
        local.acquire()
        try:
            if depths.get(key, 0) > 0:
                depths[key] += 1
                try:
                    yield
                finally:
                    depths[key] -= 1
            else:
                path.parent.mkdir(parents=True, exist_ok=True)
                with path.open("a+") as handle:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                    depths[key] = 1
                    try:
                        yield
                    finally:
                        depths[key] = 0
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            local.release()

    # -- record IO (caller holds the lock for writes) ---------------------

    def _read(self, name: str) -> Lease | None:
        path = self.lease_path(name)
        try:
            document = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            return None  # torn write: treat as absent (see module docstring)
        if not isinstance(document, dict) or "payload" not in document:
            return None
        payload = document["payload"]
        if document.get("check") != payload_checksum(payload):
            return None
        try:
            return Lease.from_payload(payload)
        except LeaseError:
            return None

    def _write(self, lease: Lease) -> None:
        payload = lease.to_payload()
        document = {"v": LEASE_VERSION, "check": payload_checksum(payload), "payload": payload}
        path = self.lease_path(lease.name)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{os.urandom(2).hex()}")
        tmp.write_text(json.dumps(document, sort_keys=True) + "\n")
        os.replace(tmp, path)

    # -- operations -------------------------------------------------------

    def peek(self, name: str) -> Lease | None:
        """The current lease record of *name* (live, expired or released)."""
        return self._read(name)

    def live_leases(self) -> "list[Lease]":
        """Every currently live lease under this root, name-sorted.

        A lock-free scrape-time survey (records are read with the usual
        torn-write tolerance): the fleet front end turns these into
        per-owner heartbeat-age gauges on ``/metrics``.
        """
        leases_dir = self.root / "leases"
        if not leases_dir.is_dir():
            return []
        now = time.time()
        live: "list[Lease]" = []
        for path in sorted(leases_dir.glob("*.json")):
            lease = self._read(path.stem)
            if lease is not None and not lease.expired(now):
                live.append(lease)
        return live

    def claim(self, name: str, owner: str) -> Lease | None:
        """Try to claim *name* for *owner*.

        Succeeds when no lease exists, the previous one was released, or
        the previous one has expired (its owner stopped heartbeating);
        the new lease's fencing token is the previous token plus one in
        every case. Returns ``None`` while another owner's lease is
        live — the caller polls again later.
        """
        with self.locked(name):
            now = time.time()
            current = self._read(name)
            if current is not None and not current.expired(now):
                return None
            token = (0 if current is None else current.token) + 1
            lease = Lease(
                name=name, owner=owner, token=token, deadline=now + self.ttl, ttl=self.ttl
            )
            self._write(lease)
            _METRIC_LEASE_CLAIMS.inc()
            if current is not None and not current.released:
                # The previous owner went silent past its TTL: a takeover.
                _METRIC_LEASE_EXPIRIES.inc()
            return lease

    def renew(self, lease: Lease) -> Lease:
        """Heartbeat: push the deadline of an owned lease forward.

        Renewal succeeds as long as nobody re-claimed the name — an
        expired-but-unclaimed lease can be resurrected by its owner
        (standard lease semantics: expiry only *permits* a takeover).

        Raises
        ------
        StaleLeaseError
            When the lease was re-claimed (token moved on), released, or
            the record vanished — the caller must abandon its work.
        """
        with self.locked(lease.name):
            current = self._read(lease.name)
            if (
                current is None
                or current.token != lease.token
                or current.owner != lease.owner
                or current.released
            ):
                raise StaleLeaseError(
                    f"lease {lease.name!r} token {lease.token} is no longer held by "
                    f"{lease.owner!r} "
                    f"(current: {None if current is None else current.to_payload()})"
                )
            renewed = replace(current, deadline=time.time() + self.ttl)
            self._write(renewed)
            return renewed

    def release(self, lease: Lease) -> None:
        """Voluntarily end an owned lease (no-op when already lost).

        The record is kept on disk with ``released=True`` so the next
        claim continues the fencing-token lineage.
        """
        with self.locked(lease.name):
            current = self._read(lease.name)
            if current is None or current.token != lease.token or current.owner != lease.owner:
                return
            self._write(replace(current, released=True))

    def validate(self, lease: Lease) -> None:
        """Fencing check before a commit made under *lease*.

        Raises
        ------
        StaleLeaseError
            When the lease is no longer the current live claim — the
            caller's work must be discarded, because a newer owner may
            already be executing (and committing) the same resource.
        """
        with self.locked(lease.name):
            current = self._read(lease.name)
            now = time.time()
            if (
                current is None
                or current.token != lease.token
                or current.owner != lease.owner
                or current.released
                or current.expired(now)
            ):
                raise StaleLeaseError(
                    f"commit under lease {lease.name!r} token {lease.token} rejected: "
                    "the lease expired or was re-claimed"
                )
