"""Stable cache keys for experiment artifacts.

The store is content-addressed: a repetition's cache location is a
:func:`config_key` — a SHA-256 digest of a canonical JSON document
describing *everything* its result depends on. The experiments build that
document from

* the case study's numeric content (:func:`describe_study` — interval
  bound matrices, proposal, ground-truth chain, property, sample size),
* the estimator configuration (name, confidence, search parameters,
  simulation backend),
* the root :class:`~numpy.random.SeedSequence` entropy (repetition ``i``
  always receives the ``i``-th spawned child, so the root entropy plus the
  record index identifies the exact RNG stream), and
* the code-relevant versions (:func:`code_versions` — the store schema,
  the package version and the NumPy version, whose RNG and floating-point
  kernels the bitwise-parity guarantee rides on).

Keys are deliberately *oblivious* to the repetition count and the worker
count: repetitions are pure functions of ``(context, seed)`` and
``SeedSequence.spawn`` hands out prefix-stable children, so extending a
run from 4 to 100 repetitions reuses the first 4 records, and records
computed on 4 workers are bitwise those computed on 1.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping

import numpy as np

import repro
from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.core.linalg import is_sparse
from repro.errors import StoreError
from repro.importance.bounded import UnrolledProposal
from repro.models.base import CaseStudy

__all__ = [
    "STORE_SCHEMA",
    "canonical_json",
    "code_versions",
    "config_key",
    "describe_study",
    "fingerprint_array",
    "fingerprint_chain",
    "fingerprint_matrix",
    "payload_checksum",
    "seed_entropy",
]

#: Version of the on-disk record format; part of every key, so a format
#: change can never misinterpret records written by an older layout.
#: Bumped to 2 when matrix cell records grew estimator-specific detail
#: payloads (the ``ce``/``imc`` diagnostics).
STORE_SCHEMA = 2


def canonical_json(payload: object) -> str:
    """Serialise *payload* to canonical JSON (sorted keys, no whitespace).

    Parameters
    ----------
    payload : object
        Any JSON-serialisable value. Non-finite floats are allowed (they
        serialise to ``NaN``/``Infinity``, which is stable).

    Returns
    -------
    str
        A deterministic textual form: equal payloads — across processes,
        platforms and dict insertion orders — produce equal strings.
    """
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise StoreError(f"payload is not canonically serialisable: {error}") from None


def config_key(payload: Mapping[str, object]) -> str:
    """Hash a key payload to its content address.

    Parameters
    ----------
    payload : Mapping[str, object]
        The JSON-serialisable description of everything the cached result
        depends on.

    Returns
    -------
    str
        The first 32 hex digits of the SHA-256 of the canonical JSON —
        the record-file name under the store root.
    """
    digest = hashlib.sha256(canonical_json(dict(payload)).encode("utf-8"))
    return digest.hexdigest()[:32]


def payload_checksum(payload: object) -> str:
    """Short integrity checksum embedded in every stored record line."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()[:12]


def code_versions() -> "dict[str, object]":
    """The code-relevant versions baked into every key.

    NumPy is included because both the RNG streams and the floating-point
    kernels the simulation engine vectorises through live there; a NumPy
    upgrade invalidates the cache rather than risk serving results the
    current code could not reproduce bitwise.
    """
    return {
        "schema": STORE_SCHEMA,
        "repro": repro.__version__,
        "numpy": np.__version__,
    }


def fingerprint_array(array: np.ndarray) -> str:
    """Digest of one ndarray's dtype, shape and exact bytes."""
    arr = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(arr.dtype).encode())
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()[:32]


def fingerprint_matrix(matrix: object) -> str:
    """Digest of a dense or CSR-sparse matrix's exact numeric content."""
    if is_sparse(matrix):
        csr = matrix.tocsr()  # type: ignore[attr-defined]
        parts = (
            "sparse",
            str(csr.shape),
            fingerprint_array(csr.data),
            fingerprint_array(csr.indices),
            fingerprint_array(csr.indptr),
        )
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:32]
    return fingerprint_array(np.asarray(matrix))


def fingerprint_chain(chain: DTMC) -> str:
    """Digest of a DTMC: transitions, initial state and labels."""
    label_parts = [
        f"{name}:{fingerprint_array(np.asarray(mask))}"
        for name, mask in sorted(chain.labels.items())
    ]
    parts = (
        fingerprint_matrix(chain.transitions),
        str(chain.initial_state),
        ";".join(label_parts),
    )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:32]


def _fingerprint_imc(imc: IMC) -> "dict[str, str]":
    return {
        "lower": fingerprint_matrix(imc.lower),
        "upper": fingerprint_matrix(imc.upper),
        "center": fingerprint_chain(imc.center),
    }


def describe_study(
    study: CaseStudy, unrolled_proposal: UnrolledProposal | None = None
) -> "dict[str, object]":
    """The key-payload fragment identifying one prepared case study.

    Parameters
    ----------
    study : CaseStudy
        The prepared study. Its numeric content — not the factory
        parameters that produced it — is what gets hashed, so two routes
        to the same model (registry name vs direct ``make_study`` call)
        share cache entries, and *any* drift in the model invalidates
        them.
    unrolled_proposal : UnrolledProposal, optional
        The time-dependent sampling proposal, for studies (SWaT) that
        sample through the unrolled chain instead of ``study.proposal``.

    Returns
    -------
    dict
        A JSON-serialisable description to embed under a key payload's
        ``"study"`` entry.
    """
    description: "dict[str, object]" = {
        "name": study.name,
        "imc": _fingerprint_imc(study.imc),
        "formula": repr(study.formula),
        "proposal": fingerprint_chain(study.proposal),
        "true_chain": None if study.true_chain is None else fingerprint_chain(study.true_chain),
        "gamma_true": study.gamma_true,
        "gamma_center": study.gamma_center,
        "n_samples": study.n_samples,
        "confidence": study.confidence,
    }
    if unrolled_proposal is not None:
        description["unrolled"] = {
            "chain": fingerprint_chain(unrolled_proposal.chain),
            "n_original": unrolled_proposal.n_original,
            "bound": unrolled_proposal.bound,
            "formula": repr(unrolled_proposal.formula),
        }
    return description


def seed_entropy(rng: "np.random.Generator | np.random.SeedSequence | int | None") -> str:
    """The root seed state that :func:`repro.util.rng.spawn_seeds` derives from.

    Returned as a string (entropy can exceed JSON's safe integer range)
    that also pins the sequence's spawn position: a shared ``Generator``
    whose ``SeedSequence`` has already spawned children hands later calls
    *different* repetition streams, so the spawn counter must
    disambiguate the keys. ``None`` (OS entropy) is rejected — an
    unseeded run is not cacheable.
    """
    if isinstance(rng, np.random.Generator):
        seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(rng, np.random.SeedSequence):
        seq = rng
    elif rng is None:
        raise StoreError(
            "cannot cache an unseeded (None) run: its RNG stream is "
            "drawn from OS entropy and can never be reproduced"
        )
    else:
        seq = np.random.SeedSequence(rng)
    spawn_key = ",".join(str(part) for part in seq.spawn_key)
    return f"{seq.entropy}:[{spawn_key}]:{seq.n_children_spawned}"
