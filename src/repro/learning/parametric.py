"""Learning global parameters of parametric models (Section II-B, VI-B).

Large models are often "parametrised by global variables that may be learnt
up to some precision" — the repair benchmarks depend on a single failure
rate ``α``. Instead of estimating every transition, one estimates ``α``
from event observations and derives the chain (and the IMC over the
parameter's confidence interval) from it. The paper's group-repair
experiment: frequentist inference gives ``α̂ = 0.0995`` with a 99.9 %
confidence interval ``[0.09852, 0.10048]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import LearningError
from repro.smc.intervals import normal_quantile
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class ParameterEstimate:
    """A point estimate of a global parameter with a confidence interval."""

    value: float
    low: float
    high: float
    confidence: float
    n_observations: int

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.high - self.low) / 2.0

    def as_interval(self) -> tuple[float, float]:
        """The ``(low, high)`` pair, e.g. for ``ParametricModel.imc_over_box``."""
        return (self.low, self.high)


def estimate_bernoulli_parameter(
    n_events: int, n_trials: int, confidence: float = 0.999
) -> ParameterEstimate:
    """Frequentist estimate of an event probability with a normal CI.

    ``α̂ = k/n`` and ``α̂ ± z sqrt(α̂(1−α̂)/n)`` — the construction behind
    the paper's ``α ∈ [0.09852, 0.10048]`` interval.
    """
    if n_trials <= 0:
        raise LearningError("n_trials must be positive")
    if not 0 <= n_events <= n_trials:
        raise LearningError("n_events must lie in [0, n_trials]")
    p = n_events / n_trials
    z = normal_quantile(confidence)
    half = z * math.sqrt(max(p * (1.0 - p), 1e-300) / n_trials)
    return ParameterEstimate(
        value=p,
        low=max(0.0, p - half),
        high=min(1.0, p + half),
        confidence=confidence,
        n_observations=n_trials,
    )


def simulate_bernoulli_observations(
    true_value: float,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
) -> int:
    """Draw the event count a learner would observe for a true parameter."""
    if not 0.0 <= true_value <= 1.0:
        raise LearningError("true_value must be a probability")
    generator = ensure_rng(rng)
    return int(generator.binomial(n_trials, true_value))


def learn_rate_parameter(
    true_value: float,
    n_trials: int,
    confidence: float = 0.999,
    rng: np.random.Generator | int | None = None,
) -> ParameterEstimate:
    """Simulate observations of a rate-like parameter and estimate it.

    Composition of :func:`simulate_bernoulli_observations` and
    :func:`estimate_bernoulli_parameter`: the one-call path experiments use
    to produce a learnt ``α̂`` and its confidence interval from a ground
    truth ``α``.
    """
    events = simulate_bernoulli_observations(true_value, n_trials, rng)
    return estimate_bernoulli_parameter(events, n_trials, confidence)


def exposure_for_margin(
    value: float, half_width: float, confidence: float = 0.999
) -> int:
    """Trials needed for the CI of *value* to have the given half width.

    Useful to reproduce a target interval: the paper's ``α̂ = 0.0995 ±
    0.00098`` needs ``n ≈ z² α(1−α) / h²`` observations.
    """
    if half_width <= 0:
        raise LearningError("half_width must be positive")
    z = normal_quantile(confidence)
    return math.ceil(z * z * value * (1.0 - value) / (half_width * half_width))
