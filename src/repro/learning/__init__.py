"""Model learning: frequentist estimation, smoothing, parameter inference."""

from repro.learning.frequentist import (
    empirical_state_distribution,
    learn_dtmc,
    learn_imc,
    observe_traces,
    observe_traces_batch,
    okamoto_margins,
)
from repro.learning.parametric import (
    ParameterEstimate,
    estimate_bernoulli_parameter,
    exposure_for_margin,
    learn_rate_parameter,
    simulate_bernoulli_observations,
)
from repro.learning.smoothing import (
    laplace_row,
    learn_dtmc_good_turing,
    learn_dtmc_laplace,
    simple_good_turing,
)

__all__ = [
    "ParameterEstimate",
    "empirical_state_distribution",
    "estimate_bernoulli_parameter",
    "exposure_for_margin",
    "laplace_row",
    "learn_dtmc",
    "learn_dtmc_good_turing",
    "learn_dtmc_laplace",
    "learn_imc",
    "learn_rate_parameter",
    "observe_traces",
    "observe_traces_batch",
    "okamoto_margins",
    "simple_good_turing",
    "simulate_bernoulli_observations",
]
