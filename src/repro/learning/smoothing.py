"""Smoothed transition estimators: Laplace and simple Good–Turing.

Section II-B notes that when the state space is large, raw frequencies are
unreliable and cites Laplace's ratio estimator and Good–Turing estimation
(Gale & Sampson's "Good–Turing frequency estimation without tears") as
alternatives. Both are implemented per source state over a known support.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.paths import TransitionCounts
from repro.errors import LearningError


def laplace_row(counts: np.ndarray, pseudo_count: float = 1.0) -> np.ndarray:
    """Laplace (add-``k``) estimate of one categorical distribution."""
    if pseudo_count <= 0:
        raise LearningError("pseudo_count must be positive")
    arr = np.asarray(counts, dtype=float)
    if np.any(arr < 0):
        raise LearningError("negative counts")
    total = arr.sum() + pseudo_count * arr.size
    return (arr + pseudo_count) / total


def learn_dtmc_laplace(
    counts: TransitionCounts,
    n_states: int,
    support: np.ndarray | None = None,
    pseudo_count: float = 1.0,
    template: DTMC | None = None,
) -> DTMC:
    """Laplace-smoothed DTMC estimate over a known *support*.

    *support* is a boolean matrix of structurally possible transitions;
    default: everything possible. Rows with empty support raise.
    """
    matrix = counts.to_matrix(n_states).astype(float)
    if support is None:
        support = np.ones((n_states, n_states), dtype=bool)
    estimate = np.zeros((n_states, n_states))
    for state in range(n_states):
        allowed = np.flatnonzero(support[state])
        if allowed.size == 0:
            raise LearningError(f"state {state} has empty support")
        estimate[state, allowed] = laplace_row(matrix[state, allowed], pseudo_count)
    if template is not None:
        return DTMC(estimate, template.initial_state, template.labels, template.state_names)
    return DTMC(estimate)


def simple_good_turing(frequencies: np.ndarray) -> tuple[np.ndarray, float]:
    """Gale–Sampson simple Good–Turing smoothing of count data.

    Parameters
    ----------
    frequencies:
        Observed occurrence counts of the seen species (here: transitions
        out of one state), all non-negative integers.

    Returns
    -------
    (adjusted, p0):
        ``adjusted[i]`` is the smoothed probability of species ``i``
        (normalised so the seen species share ``1 − p0``), and ``p0`` is
        the total probability mass reserved for unseen species
        (``N_1 / N``).

    The frequency-of-frequency curve is smoothed by the standard log–log
    linear regression (the "LGT" estimator), switching from Turing to LGT
    estimates at the first non-significant difference, as in the paper by
    Gale & Sampson.
    """
    counts = np.asarray(frequencies, dtype=int)
    if np.any(counts < 0):
        raise LearningError("negative frequencies")
    seen = counts[counts > 0]
    total = int(seen.sum())
    if total == 0:
        raise LearningError("no observations to smooth")
    freq_of_freq = Counter(int(c) for c in seen)
    rs = np.array(sorted(freq_of_freq), dtype=float)
    n_r = np.array([freq_of_freq[int(r)] for r in rs], dtype=float)

    # Averaging transform Z_r = N_r / (0.5 (t − q)) of Gale & Sampson.
    z = np.empty_like(n_r)
    for idx, r in enumerate(rs):
        q = rs[idx - 1] if idx > 0 else 0.0
        t = rs[idx + 1] if idx + 1 < len(rs) else 2 * r - q
        z[idx] = n_r[idx] / (0.5 * (t - q))
    # Log-log regression  log Z = a + b log r.
    log_r = np.log(rs)
    log_z = np.log(z)
    if len(rs) >= 2:
        b, a = np.polyfit(log_r, log_z, 1)
    else:
        a, b = np.log(z[0]), -1.0

    def smoothed_n(r: float) -> float:
        return float(np.exp(a + b * np.log(r)))

    # r* via Turing estimate where reliable, LGT estimate afterwards.
    r_star: dict[int, float] = {}
    use_lgt = False
    for r in (int(v) for v in rs):
        lgt = (r + 1) * smoothed_n(r + 1) / smoothed_n(r)
        n_r_here = freq_of_freq[r]
        n_r_next = freq_of_freq.get(r + 1, 0)
        if not use_lgt and n_r_next > 0:
            turing = (r + 1) * n_r_next / n_r_here
            width = 1.96 * np.sqrt(
                (r + 1.0) ** 2 * (n_r_next / n_r_here**2) * (1.0 + n_r_next / n_r_here)
            )
            if abs(lgt - turing) <= width:
                use_lgt = True
                r_star[r] = lgt
            else:
                r_star[r] = turing
        else:
            use_lgt = True
            r_star[r] = lgt

    p0 = freq_of_freq.get(1, 0) / total
    unnormalised = np.array([r_star[int(c)] if c > 0 else 0.0 for c in counts])
    seen_mass = unnormalised.sum()
    if seen_mass <= 0:
        raise LearningError("Good–Turing smoothing degenerated")
    adjusted = (1.0 - p0) * unnormalised / seen_mass
    return adjusted, float(p0)


def learn_dtmc_good_turing(
    counts: TransitionCounts,
    n_states: int,
    support: np.ndarray | None = None,
    template: DTMC | None = None,
) -> DTMC:
    """Good–Turing-smoothed DTMC estimate over a known *support*.

    Per source state, the seen transitions get simple-Good–Turing adjusted
    probabilities and the reserved mass ``p0`` is spread uniformly over the
    unseen transitions of the support. States with no observations fall
    back to uniform-over-support.
    """
    matrix = counts.to_matrix(n_states).astype(int)
    if support is None:
        support = np.ones((n_states, n_states), dtype=bool)
    estimate = np.zeros((n_states, n_states))
    for state in range(n_states):
        allowed = np.flatnonzero(support[state])
        if allowed.size == 0:
            raise LearningError(f"state {state} has empty support")
        row_counts = matrix[state, allowed]
        if row_counts.sum() == 0:
            estimate[state, allowed] = 1.0 / allowed.size
            continue
        unseen = row_counts == 0
        if not np.any(unseen):
            # Nothing unseen: plain frequencies already use all the mass.
            estimate[state, allowed] = row_counts / row_counts.sum()
            continue
        adjusted, p0 = simple_good_turing(row_counts)
        adjusted[unseen] = p0 / int(unseen.sum())
        estimate[state, allowed] = adjusted / adjusted.sum()
    if template is not None:
        return DTMC(estimate, template.initial_state, template.labels, template.state_names)
    return DTMC(estimate)
