"""Frequentist learning of DTMCs and IMCs from observations (Section II-B).

A transition is estimated by its empirical frequency ``â_ij = n_ij / n_i``;
the Okamoto bound turns the per-state observation count into an absolute
margin ``ε`` with confidence ``1 − δ`` (the paper's worked example:
``δ = 1e-5``, ``n_i = 1e4`` gives ``ε ≈ 0.025``). The IMC
``[Â] = [Â − ε, Â + ε]`` centred on the learnt chain is then exactly the
object IMCIS needs.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtmc import DTMC
from repro.core.imc import IMC
from repro.core.paths import TransitionCounts
from repro.errors import LearningError
from repro.smc.intervals import okamoto_epsilon
from repro.util.rng import ensure_rng


def observe_traces(
    chain: DTMC,
    n_steps: int,
    rng: np.random.Generator | int | None = None,
    n_traces: int = 1,
    initial_state: int | None = None,
) -> TransitionCounts:
    """Record transition counts along random walks of the ground-truth chain.

    This simulates the "long sequence of random observations" the paper
    learns from. Each of the *n_traces* walks takes *n_steps* transitions.
    """
    if n_steps <= 0:
        raise LearningError("n_steps must be positive")
    generator = ensure_rng(rng)
    counts = TransitionCounts()
    for _ in range(n_traces):
        state = chain.initial_state if initial_state is None else int(initial_state)
        for _ in range(n_steps):
            next_state = chain.step(state, generator)
            counts.record(state, next_state)
            state = next_state
    return counts


def observe_traces_batch(
    chain: DTMC,
    n_steps: int,
    n_traces: int,
    rng: np.random.Generator | int | None = None,
    initial_state: int | None = None,
) -> TransitionCounts:
    """Vectorised log generation for dense chains.

    Simulates *n_traces* walks in parallel (*n_steps* transitions each) with
    one vectorised draw per step — orders of magnitude faster than
    :func:`observe_traces` when millions of observations are needed to
    reach small Okamoto margins (the SWaT pipeline learns from ~5 M
    transitions).
    """
    if chain.is_sparse:
        raise LearningError("observe_traces_batch requires a dense chain")
    if n_steps <= 0 or n_traces <= 0:
        raise LearningError("n_steps and n_traces must be positive")
    generator = ensure_rng(rng)
    cumulative = np.cumsum(chain.dense(), axis=1)
    cumulative[:, -1] = 1.0
    n = chain.n_states
    start = chain.initial_state if initial_state is None else int(initial_state)
    states = np.full(n_traces, start, dtype=np.int64)
    count_matrix = np.zeros((n, n), dtype=np.int64)
    for _ in range(n_steps):
        draws = generator.random(n_traces)
        next_states = (cumulative[states] < draws[:, None]).sum(axis=1)
        np.add.at(count_matrix, (states, next_states), 1)
        states = next_states
    pairs = np.argwhere(count_matrix > 0)
    return TransitionCounts.from_pairs(
        ((int(i), int(j)), int(count_matrix[i, j])) for i, j in pairs
    )


def counts_matrix(counts: TransitionCounts, n_states: int) -> np.ndarray:
    """Densify a count table into an ``n × n`` integer matrix."""
    return counts.to_matrix(n_states)


def learn_dtmc(
    counts: TransitionCounts,
    n_states: int,
    template: DTMC | None = None,
    unvisited: str = "self-loop",
) -> DTMC:
    """Maximum-likelihood DTMC from transition counts.

    Parameters
    ----------
    counts, n_states:
        The observations and the (known) state-space size.
    template:
        Optional chain providing initial state, labels and state names for
        the learnt model (e.g. the ground truth whose structure is known).
    unvisited:
        Row policy for states never observed as a source: ``"self-loop"``
        (default), ``"uniform"``, or ``"error"``.
    """
    if unvisited not in ("self-loop", "uniform", "error"):
        raise LearningError("unvisited must be 'self-loop', 'uniform' or 'error'")
    matrix = counts.to_matrix(n_states).astype(float)
    row_totals = matrix.sum(axis=1)
    estimate = np.zeros_like(matrix)
    for state in range(n_states):
        if row_totals[state] > 0:
            estimate[state] = matrix[state] / row_totals[state]
        elif unvisited == "self-loop":
            estimate[state, state] = 1.0
        elif unvisited == "uniform":
            estimate[state] = 1.0 / n_states
        else:
            raise LearningError(f"state {state} was never observed as a source")
    if template is not None:
        return DTMC(
            estimate, template.initial_state, template.labels, template.state_names
        )
    return DTMC(estimate)


def okamoto_margins(
    counts: TransitionCounts, n_states: int, delta: float
) -> np.ndarray:
    """Per-transition absolute margins from the Okamoto bound.

    The margin of every transition leaving state ``i`` is
    ``ε_i = sqrt(ln(2/δ) / (2 n_i))`` — a function of how often the state
    was observed, as in Section II-B. Rows never observed get margin 0
    (their estimate is a convention, not data; widen explicitly if needed).
    """
    matrix = counts.to_matrix(n_states)
    row_totals = matrix.sum(axis=1)
    margins = np.zeros((n_states, n_states), dtype=float)
    for state in range(n_states):
        total = int(row_totals[state])
        if total > 0:
            margins[state, :] = okamoto_epsilon(total, delta)
    return margins


def learn_imc(
    counts: TransitionCounts,
    n_states: int,
    delta: float,
    template: DTMC | None = None,
    unvisited: str = "self-loop",
    widen_zero: bool = False,
) -> IMC:
    """Learn a DTMC and wrap it in its Okamoto-margin IMC.

    The result is the ``[Â]`` of the paper: an interval chain centred on the
    frequentist estimate whose half-widths reflect the per-state sample
    sizes. With ``widen_zero=False`` (default) unobserved transitions stay
    structurally impossible — appropriate when the support is known.
    """
    chain = learn_dtmc(counts, n_states, template, unvisited)
    margins = okamoto_margins(counts, n_states, delta)
    return IMC.from_center(chain, margins, widen_zero=widen_zero)


def empirical_state_distribution(counts: TransitionCounts, n_states: int) -> np.ndarray:
    """Observed source-state visit frequencies (diagnostic)."""
    matrix = counts.to_matrix(n_states)
    totals = matrix.sum(axis=1).astype(float)
    overall = totals.sum()
    if overall == 0:
        raise LearningError("no observations")
    return totals / overall
