"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
::

    repro info
    repro table1 --reps 10 --samples 2000
    repro table2 --study illustrative --reps 20
    repro fig3 --samples 5000 --out results/
    repro fig5 --points 21
    repro matrix --quick --workers 4 --out results/
    repro serve --store runs/store --port 8000
    repro submit --study illustrative --estimator is --wait
    repro jobs

Every command prints an ASCII rendering; ``--out DIR`` additionally writes
the underlying CSV series.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import signal
import sys
import threading
import time
from pathlib import Path

import numpy as np

import repro
from repro.errors import EstimationError, ModelError, ServiceError, StoreError
from repro.experiments.figures import (
    BoundEvolution,
    IntervalSeries,
    ProbabilityCurve,
    write_csv,
)
# The matrix module is the single source of truth for estimator names:
# the parser reads matrix.ESTIMATOR_NAMES at build time (not import time)
# so registering a new estimator updates the CLI surfaces too.
from repro.experiments import matrix as matrix_experiments
from repro.experiments.matrix import MatrixConfig, run_matrix
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import render_table2, run_table2
from repro.imcis.algorithm import IMCISConfig, imcis_estimate, imcis_from_sample
from repro.imcis.random_search import RandomSearchConfig
from repro.importance.bounded import run_bounded_importance_sampling
from repro.models import illustrative, repair_group
from repro.models.registry import REGISTRY
from repro.obs import trace as obs_trace
from repro.obs.runprofile import RunProfile
from repro.service import ServiceClient, ServiceConfig, create_server
from repro.smc.kernels import kernel_runtime_info
from repro.store import ArtifactStore, RunManifest


def _kernel_tier_note() -> str:
    """Kernel-tier availability note appended to ``--version`` output."""
    info = kernel_runtime_info()
    if info["numba_available"]:
        return f"(kernel tier: numba {info['numba_version']})"
    return "(kernel tier: numpy fallback, numba unavailable)"


def _obs_note() -> str:
    """Observability status note appended to ``--version`` output."""
    status = obs_trace.status()
    state = "on" if status["enabled"] else "off"
    sink = status["trace_file"] or "none"
    return f"(obs: tracing {state}, ring {status['ring_size']}, sink {sink})"


def _workers_arg(value: str) -> "int | str":
    """Parse ``--workers``: the literal ``auto`` or a positive integer."""
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(f"workers must be positive, got {workers}")
    return workers


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2018, help="root RNG seed")
    parser.add_argument("--samples", type=int, default=None, help="traces per repetition")
    parser.add_argument("--reps", type=int, default=None, help="number of repetitions")
    parser.add_argument("--out", type=Path, default=None, help="directory for CSV output")
    parser.add_argument(
        "--r-undefeated", type=int, default=1000, help="random-search stopping parameter R"
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "sequential", "vectorized", "kernel", "parallel"],
        default="auto",
        help="simulation engine: 'auto' (default) picks the compiled "
        "kernel tier where the property's monitor supports it, the "
        "lockstep-ensemble NumPy backend otherwise; or force the kernel "
        "tier, the vectorized engine, the scalar reference loop, or the "
        "process-pool sharded engine; every tier falls back to "
        "sequential for properties that do not compile to masks",
    )
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default="auto",
        help="worker processes for the repetition fan-out ('auto' = CPU "
        "count, 1 = run everything in-process); repetition results are "
        "bitwise identical for every value, on every machine. To shard "
        "the sampling of a single run instead, use --backend parallel",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="artifact store directory: per-repetition results are cached "
        "content-addressed by (study, estimator config, seed, versions), "
        "so reruns only simulate cache misses; cached and fresh results "
        "are bitwise identical",
    )


def _study_for(name: str, seed: int):
    """Resolve *name* through the registry (seeded factories get *seed*)."""
    try:
        return REGISTRY.make_study(name, rng=seed).as_pair()
    except ModelError as error:
        raise SystemExit(str(error)) from None


def cmd_info(args: argparse.Namespace) -> int:
    """Print the model inventory and exact probabilities."""
    print("IMCIS reproduction — Jegourel, Wang, Sun, DSN 2018")
    print()
    print("illustrative:  4 states,  gamma =", illustrative.exact_probability())
    print(
        "               gamma(A_hat) =",
        illustrative.exact_probability(illustrative.A_HAT, illustrative.C_HAT),
    )
    chain = repair_group.embedded_chain()
    print(
        f"group repair:  {chain.n_states} states, gamma(alpha=0.1) =",
        repair_group.exact_probability(repair_group.ALPHA_TRUE),
    )
    print("swat truth:    70 states (synthetic surrogate; see DESIGN.md)")
    print("large repair:  40320 states (build with `repro table2 --study large-repair`)")
    print()
    print("registered studies (run the matrix over them with `repro matrix`):")
    for spec in REGISTRY:
        tags = f"  [{', '.join(sorted(spec.tags))}]" if spec.tags else ""
        print(f"  {spec.name:<14} {spec.description}{tags}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Regenerate Table I."""
    reps = args.reps or 100
    samples = args.samples or 10_000
    started = time.time()
    result = run_table1(
        reps,
        samples,
        args.r_undefeated,
        rng=args.seed,
        backend=args.backend,
        workers=args.workers,
        store=args.store,
    )
    print(result.render())
    print(f"[{reps} repetitions x {samples} traces in {time.time() - started:.1f}s]")
    if args.out:
        path = write_csv(
            args.out / "table1.csv", ["nr", "amin", "cmin", "amax", "cmax"], result.rows()
        )
        print("wrote", path)
    return 0


def _search_config(args: argparse.Namespace) -> RandomSearchConfig:
    return RandomSearchConfig(r_undefeated=args.r_undefeated, record_history=False)


def _run_study_coverage(args: argparse.Namespace, study_name: str):
    study, unrolled = _study_for(study_name, args.seed)
    report = run_table2(
        [(study, unrolled)],
        args.reps or 100,
        rng=args.seed,
        search=_search_config(args),
        n_samples=args.samples or study.n_samples,
        backend=args.backend,
        workers=args.workers,
        store=args.store,
    )[0]
    return study, report


def cmd_table2(args: argparse.Namespace) -> int:
    """Regenerate Table II for one or all case studies."""
    names = [args.study] if args.study else ["illustrative", "group-repair", "swat"]
    started = time.time()
    studies = [_study_for(name, args.seed) for name in names]
    reports = run_table2(
        studies,
        args.reps or 100,
        rng=args.seed,
        search=_search_config(args),
        n_samples=args.samples,
        backend=args.backend,
        workers=args.workers,
        store=args.store,
    )
    print(render_table2(reports))
    print(f"[{time.time() - started:.1f}s]")
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    """Regenerate Figure 2 (interval superposition)."""
    study, report = _run_study_coverage(args, args.study or "group-repair")
    series = IntervalSeries.from_report(report, study.confidence)
    print(series.render())
    print(f"IS interval inside IMCIS interval in {series.containment_fraction():.0%} of runs")
    if args.out:
        path = write_csv(
            args.out / f"fig2_{series.study}.csv",
            ["rep", "is_low", "is_high", "imcis_low", "imcis_high"],
            series.rows(),
        )
        print("wrote", path)
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    """Regenerate Figure 3 (bound evolution)."""
    study, unrolled = _study_for(args.study or "group-repair", args.seed)
    samples = args.samples or study.n_samples
    config = IMCISConfig(
        confidence=study.confidence,
        search=RandomSearchConfig(r_undefeated=args.r_undefeated, record_history=True),
    )
    if args.store:
        print("note: --store caches repetition experiments; fig3 is a single run and ignores it")
    # No workers= here: fig3 is a single run, and sharded sampling would
    # move it off the reference RNG stream (changing published numbers).
    # Sharding stays available explicitly through --backend parallel.
    rng = np.random.default_rng(args.seed)
    if unrolled is not None:
        sample = run_bounded_importance_sampling(unrolled, samples, rng, backend=args.backend)
        result = imcis_from_sample(study.imc, sample, rng, config)
    else:
        result = imcis_estimate(
            study.imc,
            study.proposal,
            study.formula,
            samples,
            rng,
            config,
            backend=args.backend,
        )
    evolution = BoundEvolution.from_result(result)
    print(evolution.render())
    if args.out:
        path = write_csv(args.out / "fig3.csv", ["round", "lower", "upper"], evolution.rows())
        print("wrote", path)
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    """Regenerate Figure 4 (SWaT intervals)."""
    args.study = "swat"
    study, report = _run_study_coverage(args, "swat")
    series = IntervalSeries.from_report(report, study.confidence)
    print(series.render())
    print("disjoint IS interval pairs:", series.is_pairwise_disjoint_count())
    if args.out:
        path = write_csv(
            args.out / "fig4.csv",
            ["rep", "is_low", "is_high", "imcis_low", "imcis_high"],
            series.rows(),
        )
        print("wrote", path)
    return 0


def _matrix_config(args: argparse.Namespace) -> MatrixConfig:
    """Build the matrix configuration from parsed CLI arguments."""
    studies = tuple(args.studies.split(",")) if args.studies else None
    estimators = tuple(args.estimators.split(","))
    repetitions = args.reps or (4 if args.quick else 20)
    n_samples = args.samples if args.samples is not None else (1000 if args.quick else None)
    # The matrix parser defaults --r-undefeated to None (not 1000) so an
    # explicit value always wins; unset, --quick scales the search down.
    if args.r_undefeated is not None:
        search_rounds = args.r_undefeated
    else:
        search_rounds = 100 if args.quick else 1000
    return MatrixConfig(
        studies=studies,
        estimators=estimators,
        backend=args.backend,
        repetitions=repetitions,
        n_samples=n_samples,
        search_rounds=search_rounds,
        quick=args.quick,
        seed=args.seed,
        workers=args.workers,
    )


def cmd_matrix(args: argparse.Namespace) -> int:
    """Run the cross-study experiment matrix over the registry."""
    if args.profile is not None:
        # The profile distills the span stream, so profiling turns
        # tracing on; stale buffered events are dropped so the profile
        # covers exactly this run. Results are unaffected (tracing
        # observes, never perturbs — see repro.obs).
        obs_trace.configure(enabled=True)
        obs_trace.reset()
    store = ArtifactStore(args.store) if args.store else None
    manifest: RunManifest | None = None
    if args.resume:
        if store is None:
            raise SystemExit("--resume needs --store DIR (the store holding the run)")
        try:
            manifest = store.load_manifest(args.resume)
            if manifest.command != "matrix":
                raise SystemExit(f"run {args.resume!r} is a {manifest.command!r} run, not a matrix")
            config = MatrixConfig.from_payload(manifest.config)
        except StoreError as error:
            raise SystemExit(str(error)) from None
        print(f"resuming run {manifest.run_id} ({manifest.status})")
    else:
        config = _matrix_config(args)
        if store is not None:
            manifest = RunManifest(
                run_id=store.new_run_id("matrix"),
                command="matrix",
                config=config.to_payload(),
                status="running",
                created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            )
            store.save_manifest(manifest)
            print(
                f"run {manifest.run_id} (resume with: repro matrix "
                f"--resume {manifest.run_id} --store {args.store})"
            )
    started = time.time()
    try:
        result = run_matrix(config, store=store)
    except (ModelError, EstimationError, StoreError) as error:
        raise SystemExit(str(error)) from None
    if store is not None and manifest is not None:
        store.save_manifest(
            RunManifest(
                run_id=manifest.run_id,
                command=manifest.command,
                config=manifest.config,
                status="complete",
                keys=tuple(sorted(store.touched_keys)),
                created=manifest.created,
            )
        )
        print(f"store: {store.stats.summary()}")
    print(result.render())
    elapsed = time.time() - started
    print(f"[{len(result.cells)} cells x {config.repetitions} repetitions in {elapsed:.1f}s]")
    if args.profile is not None:
        profile = RunProfile.from_events(obs_trace.events())
        args.profile.parent.mkdir(parents=True, exist_ok=True)
        args.profile.write_text(profile.to_json() + "\n")
        print(profile.render())
        print("wrote", args.profile)
    failing = result.failing_cells()
    for cell in failing:
        print(
            f"WARNING: {cell.study}/{cell.estimator} mean interval "
            f"[{cell.ci_low:.6g}, {cell.ci_high:.6g}] misses gamma_true {cell.gamma_true:.6g}"
        )
    if args.out:
        for path in result.write(args.out).values():
            print("wrote", path)
    if args.check and failing:
        # Name the offending cells on stderr so a failing --check run is
        # diagnosable from the error stream alone (CI logs, `2>errors`).
        names = ", ".join(f"({cell.study}, {cell.estimator})" for cell in failing)
        print(
            f"FAIL: {len(failing)} cell(s) miss gamma_true: {names}",
            file=sys.stderr,
        )
        return 1
    return 0


def _store_ls(store: ArtifactStore, fmt: str) -> int:
    """List the store's runs and records (O(index): no segment is read)."""
    document = store.describe()
    if fmt == "json":
        print(json.dumps(document, indent=2))
        return 0
    totals = document["totals"]
    print(f"artifact store at {document['root']} (format v{document['format']})")
    print(f"runs: {totals['runs']}")
    for run in document["runs"]:
        created = f"  {run['created']}" if run["created"] else ""
        print(
            f"  {run['run_id']:<18} {run['command']:<8} {run['status']:<9}"
            f" {run['keys']} key(s){created}"
        )
    print(f"records: {totals['keys']} key(s), {totals['records']} record(s), "
          f"{totals['bytes']:,} bytes")
    for entry in document["records"]:
        legacy = "  [legacy v1]" if entry["legacy"] else ""
        print(f"  {entry['key']}  {entry['records']} record(s){legacy}")
    return 0


def _store_inspect(store: ArtifactStore, run_id: str | None, key: str | None, fmt: str) -> int:
    """Validate stored records; show one run's manifest or one key's records."""
    manifest = None
    if run_id is not None:
        manifest = store.load_manifest(run_id)
        keys = list(manifest.keys)
    else:
        keys = [key] if key is not None else list(store.iter_keys())
    checked = []
    status = 0
    for k in keys:
        valid, problems = store.verify(k)
        if problems:
            status = 1
        checked.append({"key": k, "records": valid, "problems": problems})
    if fmt == "json":
        document = {
            "root": str(store.root),
            "format": store.version,
            "run": None if manifest is None else json.loads(manifest.to_json()),
            "records": checked,
            "ok": status == 0,
        }
        print(json.dumps(document, indent=2))
        return status
    if manifest is not None:
        print(manifest.to_json())
        if not manifest.keys:
            print("(run lists no keys yet — it has not completed)")
    for entry in checked:
        line = f"{entry['key']}  {entry['records']} valid record(s)"
        if entry["problems"]:
            line += f", {len(entry['problems'])} problem(s)"
        print(line)
        for problem in entry["problems"]:
            print(f"    {problem}")
    return status


def _store_gc(
    store: ArtifactStore,
    drop_unreferenced: bool,
    dry_run: bool,
    older_than: float | None,
    fmt: str,
) -> int:
    """Compact segments and record files, dropping corrupt frames and orphans."""
    counters = store.gc(
        drop_unreferenced=drop_unreferenced, dry_run=dry_run, older_than=older_than
    )
    if fmt == "json":
        print(json.dumps({"root": str(store.root), "format": store.version, **counters}, indent=2))
        return 0
    prefix = "would keep" if dry_run else "kept"
    print(
        f"{prefix} {counters['records_kept']} record(s), "
        f"dropped {counters['lines_dropped']} corrupt/duplicate record(s), "
        f"dropped {counters['keys_dropped']} orphaned key(s), "
        f"deleted {counters['files_deleted']} file(s) and "
        f"{counters['segments_removed']} segment(s)"
    )
    if drop_unreferenced and counters["in_flight_runs"]:
        print(
            f"note: {counters['in_flight_runs']} run(s) still 'running' — "
            "unreferenced records kept (an interrupted run records its keys "
            "only on completion, so its resumable records look like orphans)"
        )
    return 0


def _store_migrate(store: ArtifactStore, keep_v1: bool, fmt: str) -> int:
    """Rewrite legacy v1 JSON-lines records into format v2 segments."""
    counters = store.migrate(keep_v1=keep_v1)
    if fmt == "json":
        print(json.dumps({"root": str(store.root), "format": store.version, **counters}, indent=2))
        return 0
    print(
        f"migrated {counters['records_migrated']} record(s) across "
        f"{counters['keys_migrated']} key(s), skipped {counters['lines_skipped']} "
        f"corrupt/already-indexed line(s), removed {counters['files_removed']} "
        f"legacy file(s)"
    )
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Artifact-store maintenance: ls, inspect, gc, migrate."""
    store = ArtifactStore(args.store)
    fmt = getattr(args, "format", "table")
    if getattr(args, "json", False):
        fmt = "json"
    try:
        if args.store_command == "ls":
            return _store_ls(store, fmt)
        if args.store_command == "inspect":
            return _store_inspect(store, args.run, args.key, fmt)
        if args.store_command == "migrate":
            return _store_migrate(store, args.keep_v1, fmt)
        return _store_gc(store, args.drop_unreferenced, args.dry_run, args.older_than, fmt)
    except StoreError as error:
        raise SystemExit(str(error)) from None


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the estimation service until SIGINT/SIGTERM, then drain."""
    if args.access_log:
        logger = logging.getLogger("repro.service")
        if not logger.handlers:
            handler = logging.StreamHandler()
            handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(message)s"))
            logger.addHandler(handler)
        logger.setLevel(logging.INFO)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store_root=args.store,
        capacity=args.queue_size,
        job_workers=args.job_workers,
        workers=None if args.workers == 1 else args.workers,
        fleet_root=args.fleet,
        reuse_port=args.reuse_port,
        access_log=args.access_log,
    )
    try:
        server = create_server(config)
    except OSError as error:
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {error}") from None
    host, port = server.server_address[:2]
    print(f"estimation service on http://{host}:{port}")
    if args.fleet is not None:
        print(f"  fleet: stateless front end over {args.fleet}")
        print("         run 'repro worker --store' against the same directory")
        print(f"  queue: {args.queue_size} pending jobs max (durable, fleet-wide)")
    else:
        print(f"  store: {args.store or '(none — every job simulates)'}")
        print(f"  queue: {args.queue_size} waiting jobs max, {args.job_workers} job worker(s)")
    print("  stop:  SIGINT/SIGTERM drains the queue and exits")
    stop_requested = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop_requested.set()
        # shutdown() must not run on the signal handler's (main) thread
        # while serve_forever blocks it — hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {sig: signal.signal(sig, _request_stop) for sig in (signal.SIGINT, signal.SIGTERM)}
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if args.fleet is not None:
            print("stopping front end (durable queue and workers are unaffected)")
        else:
            print("draining: waiting for in-flight jobs, cancelling queued ones")
        server.service.stop()  # type: ignore[attr-defined]
        server.server_close()
        print("stopped")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Run one fleet pull worker until signalled (or drained/idle)."""
    from repro.service.fleet import FleetWorker

    worker = FleetWorker(
        args.store,
        owner=args.owner,
        lease_ttl=args.lease_ttl,
        poll=args.poll,
        workers=None if args.workers == 1 else args.workers,
    )
    print(f"fleet worker {worker.owner} on {args.store}")
    print(f"  lease ttl {args.lease_ttl:g}s (heartbeat every {args.lease_ttl / 3.0:g}s)")
    print("  stop: SIGINT/SIGTERM exits after the job in flight")

    def _request_stop(signum: int, frame: object) -> None:
        worker.stop()

    previous = {sig: signal.signal(sig, _request_stop) for sig in (signal.SIGINT, signal.SIGTERM)}
    try:
        stats = worker.run(max_jobs=args.max_jobs, idle_exit=args.idle_exit)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print(
        f"worker done: {stats['completed']} completed, {stats['failed']} failed, "
        f"{stats['stale']} stale (of {stats['claimed']} claimed)"
    )
    return 0


def _submit_payload(args: argparse.Namespace) -> "dict[str, object]":
    payload: "dict[str, object]" = {
        "study": args.study,
        "estimator": args.estimator,
        "repetitions": args.reps,
        "seed": args.seed,
        "search_rounds": args.r_undefeated,
        "quick": args.quick,
    }
    if args.samples is not None:
        payload["n_samples"] = args.samples
    return payload


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one estimation job to a running service."""
    client = ServiceClient(args.url)
    try:
        submitted = client.submit(_submit_payload(args), retries=args.retries)
        job_id = str(submitted["id"])
        note = " (deduplicated onto an in-flight job)" if submitted.get("deduplicated") else ""
        print(f"job {job_id}{note}")
        if not args.wait:
            print(f"poll with: repro jobs --url {args.url} --job {job_id}")
            return 0
        snapshot = client.wait(job_id, timeout=args.timeout)
        print(json.dumps(snapshot, indent=2))
        return 0 if snapshot["state"] == "complete" else 1
    except ServiceError as error:
        raise SystemExit(str(error)) from None


def cmd_jobs(args: argparse.Namespace) -> int:
    """List a running service's jobs, or show one job."""
    client = ServiceClient(args.url)
    try:
        if args.job:
            print(json.dumps(client.job(args.job), indent=2))
            return 0
        jobs = client.jobs()
        if args.json:
            print(json.dumps(jobs, indent=2))
            return 0
        print(f"{len(jobs)} job(s) at {args.url}")
        for job in jobs:
            request = job["request"]
            print(
                f"  {job['id']}  {job['state']:<9} {request['study']}/{request['estimator']}"
                f"  reps={request['repetitions']} seed={request['seed']}"
            )
        return 0
    except ServiceError as error:
        raise SystemExit(str(error)) from None


def _format_trace_record(record: "dict[str, object]") -> str:
    """One aligned human-readable line for a trace-file record."""
    kind = str(record.get("kind", "?"))
    name = str(record.get("name", "?"))
    depth = int(record.get("depth", 0) or 0)
    ts = float(record.get("ts", 0.0) or 0.0)
    clock = time.strftime("%H:%M:%S", time.localtime(ts)) if ts else "--:--:--"
    duration = record.get("dur_s")
    timing = f"{float(duration) * 1e3:9.2f}ms" if duration is not None else " " * 11
    fields = record.get("fields")
    suffix = ""
    if isinstance(fields, dict) and fields:
        pairs = " ".join(f"{key}={fields[key]}" for key in sorted(fields))
        suffix = f"  {pairs}"
    error = record.get("error")
    if error:
        suffix += f"  error={error}"
    indent = "  " * depth
    return f"{clock} {timing}  {indent}{kind:<5} {name}{suffix}"


def cmd_obs(args: argparse.Namespace) -> int:
    """Observability utilities (``repro obs tail``)."""
    path = args.file
    if path is None:
        configured = os.environ.get("REPRO_TRACE_FILE", "").strip()
        if not configured:
            raise SystemExit("no trace file: pass --file PATH or set REPRO_TRACE_FILE")
        path = Path(configured)
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise SystemExit(f"cannot read trace file {path}: {error}") from None
    records: "list[dict[str, object]]" = []
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line from a live writer
        if isinstance(record, dict):
            records.append(record)
    tail = records[-args.lines :] if args.lines > 0 else records
    for record in tail:
        if args.json:
            print(json.dumps(record, sort_keys=True))
        else:
            print(_format_trace_record(record))
    print(f"[{len(tail)} of {len(records)} event(s) from {path}]", file=sys.stderr)
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    """Regenerate Figure 5 (probability curve)."""
    grid, values = repair_group.probability_curve(points=args.points)
    curve = ProbabilityCurve("alpha", grid, values)
    print(curve.render())
    if args.out:
        path = write_csv(args.out / "fig5.csv", ["alpha", "gamma"], curve.rows())
        print("wrote", path)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Importance Sampling of Interval Markov Chains' (DSN 2018)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__} {_kernel_tier_note()} {_obs_note()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="model inventory and exact probabilities")

    p = sub.add_parser("table1", help="Table I random-search statistics")
    _add_common(p)

    study_names = REGISTRY.list_studies()

    p = sub.add_parser("table2", help="Table II IS vs IMCIS coverage")
    _add_common(p)
    p.add_argument("--study", choices=study_names)

    p = sub.add_parser("fig2", help="Figure 2 interval superposition")
    _add_common(p)
    p.add_argument("--study", choices=study_names)

    p = sub.add_parser("fig3", help="Figure 3 bound evolution")
    _add_common(p)
    p.add_argument("--study", choices=study_names)

    p = sub.add_parser("fig4", help="Figure 4 SWaT intervals")
    _add_common(p)

    p = sub.add_parser("matrix", help="cross-study experiment matrix over the registry")
    _add_common(p)
    p.add_argument(
        "--studies",
        default=None,
        help="comma-separated study names (default: every registered study; "
        "with --quick, every study not tagged slow)",
    )
    p.add_argument(
        "--estimators",
        default=",".join(matrix_experiments.DEFAULT_ESTIMATORS),
        help="comma-separated estimators out of "
        f"{', '.join(matrix_experiments.ESTIMATOR_NAMES)} (default: %(default)s)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="smoke configuration: skip slow studies, apply quick study "
        "parameters, default to 4 repetitions x 1000 traces and R = 100",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any cell's mean interval misses gamma_true",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="resume an interrupted store-backed run: replay its recorded "
        "configuration, serving already-completed repetitions from the "
        "store (requires --store; run ids are printed at run start and "
        "by `repro store ls`)",
    )
    p.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="PATH",
        help="enable tracing for the run, write the per-phase timing "
        "profile (simulate / weight-accumulate / store-get / store-put / "
        "optimize) to PATH as JSON and print its table; never affects "
        "results",
    )
    # None (not 1000) so cmd_matrix can tell an explicit R from the default.
    p.set_defaults(r_undefeated=None)

    p = sub.add_parser("store", help="artifact-store maintenance")
    store_sub = p.add_subparsers(dest="store_command", required=True)

    def _store_common(q: argparse.ArgumentParser) -> None:
        q.add_argument("--store", type=Path, required=True, help="store directory")
        q.add_argument(
            "--format",
            choices=("json", "table"),
            default="table",
            help="output contract: 'json' emits one machine-readable document "
            "with the same field names the HTTP service's store endpoint "
            "serves (default: %(default)s)",
        )

    q = store_sub.add_parser("ls", help="list runs and stored records (O(index))")
    _store_common(q)
    q.add_argument(
        "--json",
        action="store_true",
        help="deprecated alias of --format json",
    )
    q = store_sub.add_parser("inspect", help="validate record integrity; show a run or a key")
    _store_common(q)
    q.add_argument("--run", default=None, metavar="RUN_ID", help="show one run's manifest")
    q.add_argument("--key", default=None, help="restrict to one config key")
    q = store_sub.add_parser(
        "gc", help="compact segments and record files: drop corrupt records and duplicates"
    )
    _store_common(q)
    q.add_argument(
        "--drop-unreferenced",
        action="store_true",
        help="also delete records no run manifest references",
    )
    q.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would happen without touching the store (strictly read-only)",
    )
    q.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="SECONDS",
        help="spare segments and record files modified within the last "
        "SECONDS (safe beside live writers)",
    )
    q = store_sub.add_parser(
        "migrate", help="rewrite legacy v1 JSON-lines records into format v2 segments"
    )
    _store_common(q)
    q.add_argument(
        "--keep-v1",
        action="store_true",
        help="leave the legacy records/ files in place after migrating",
    )

    p = sub.add_parser("fig5", help="Figure 5 probability curve")
    p.add_argument("--points", type=int, default=21)
    p.add_argument("--out", type=Path, default=None)

    p = sub.add_parser("serve", help="run the HTTP estimation service")
    p.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    p.add_argument("--port", type=int, default=8000, help="port (0 = ephemeral)")
    p.add_argument(
        "--store",
        type=Path,
        default=None,
        help="artifact store jobs consult and extend: repeat queries are "
        "served warm from disk, bitwise identical to fresh runs",
    )
    p.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bound on waiting jobs; beyond it submissions get HTTP 429 "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--job-workers",
        type=int,
        default=1,
        help="threads executing jobs concurrently (default: %(default)s)",
    )
    p.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="default per-job repetition fan-out processes ('auto' = CPU "
        "count; default 1 — the job axis usually owns concurrency)",
    )
    p.add_argument(
        "--fleet",
        type=Path,
        default=None,
        metavar="STORE_DIR",
        help="fleet mode: serve as a stateless front end over the durable "
        "queue in this shared store directory (jobs execute in 'repro "
        "worker' processes, any replica serves any job id)",
    )
    p.add_argument(
        "--reuse-port",
        action="store_true",
        help="bind with SO_REUSEPORT so multiple replicas share one address",
    )
    p.add_argument(
        "--access-log",
        action="store_true",
        help="log one line per request (method, path, status, duration) "
        "through the 'repro.service' logger on stderr",
    )

    p = sub.add_parser("worker", help="run a fleet pull worker over a shared store")
    p.add_argument(
        "--store",
        type=Path,
        required=True,
        help="the shared store directory ('repro serve --fleet' front ends "
        "point at the same one)",
    )
    p.add_argument(
        "--owner",
        default=None,
        help="lease owner identity (default: host:pid:random)",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=15.0,
        help="seconds a claimed job survives without a heartbeat before "
        "another worker may re-claim it (default: %(default)s)",
    )
    p.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="idle seconds between queue scans (default: %(default)s)",
    )
    p.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after executing this many jobs (default: run until signalled)",
    )
    p.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit after this many consecutive idle seconds (CI harnesses)",
    )
    p.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="per-job repetition fan-out when the request did not pin one "
        "('auto' = CPU count; default: %(default)s)",
    )

    p = sub.add_parser("submit", help="submit one estimation job to a running service")
    p.add_argument("--url", default="http://127.0.0.1:8000", help="service root URL")
    p.add_argument("--study", required=True, choices=study_names)
    p.add_argument(
        "--estimator",
        default="is",
        choices=list(matrix_experiments.ESTIMATOR_NAMES),
        help="estimator to run",
    )
    p.add_argument("--reps", type=int, default=4, help="repetitions of the cell")
    p.add_argument("--samples", type=int, default=None, help="traces per repetition")
    p.add_argument("--seed", type=int, default=2018, help="root RNG seed")
    p.add_argument(
        "--r-undefeated", type=int, default=100, help="random-search stopping parameter R"
    )
    p.add_argument("--quick", action="store_true", help="apply the study's quick parameters")
    p.add_argument("--wait", action="store_true", help="block until the job finishes")
    p.add_argument("--timeout", type=float, default=600.0, help="--wait timeout in seconds")
    p.add_argument(
        "--retries", type=int, default=0, help="retries (with backoff) while the queue is full"
    )

    p = sub.add_parser("jobs", help="list a running service's jobs")
    p.add_argument("--url", default="http://127.0.0.1:8000", help="service root URL")
    p.add_argument("--job", default=None, metavar="JOB_ID", help="show one job in full")
    p.add_argument("--json", action="store_true", help="machine-readable job list")

    p = sub.add_parser("obs", help="observability utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    q = obs_sub.add_parser("tail", help="show the tail of a JSON-lines trace file")
    q.add_argument(
        "--file",
        type=Path,
        default=None,
        help="trace file to read (default: $REPRO_TRACE_FILE)",
    )
    q.add_argument(
        "--lines",
        type=int,
        default=20,
        help="events to show, 0 = all (default: %(default)s)",
    )
    q.add_argument(
        "--json",
        action="store_true",
        help="print raw JSON lines instead of the aligned rendering",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "table1": cmd_table1,
        "table2": cmd_table2,
        "fig2": cmd_fig2,
        "fig3": cmd_fig3,
        "fig4": cmd_fig4,
        "fig5": cmd_fig5,
        "matrix": cmd_matrix,
        "store": cmd_store,
        "serve": cmd_serve,
        "worker": cmd_worker,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
        "obs": cmd_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
